#include "serve/server.hpp"

#include <charconv>
#include <cmath>
#include <exception>
#include <future>
#include <utility>

#include "opt/search/pareto.hpp"
#include "opt/search/strategies.hpp"
#include "opt/wordlength_optimizer.hpp"
#include "sfg/verify.hpp"
#include "support/assert.hpp"

namespace psdacc::serve {
namespace {

/// ERRF message values must stay one kv line.
std::string sanitize_message(std::string_view message) {
  std::string out(message);
  for (char& c : out)
    if (c == '\n' || c == '\r') c = ' ';
  return out;
}

std::string format_bits(const std::vector<int>& bits) {
  std::string out = "[";
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (i > 0) out += ' ';
    out += std::to_string(bits[i]);
  }
  out += ']';
  return out;
}

/// One sweep point as a CSV row matching opt::search::points_to_csv —
/// `budget,cost,noise,feasible,evaluations,bits` with shortest round-trip
/// doubles and pipe-joined bits — so a RSLT body line concatenates
/// directly under the canonical CSV header.
std::string format_point(const opt::search::ParetoPoint& p) {
  std::string row;
  const auto num = [&row](double v) {
    char buf[64];
    const auto r = std::to_chars(buf, buf + sizeof buf, v);
    row.append(buf, r.ptr);
  };
  num(p.budget);
  row += ',';
  num(p.cost);
  row += ',';
  num(p.noise);
  row += ',';
  row += p.feasible ? '1' : '0';
  row += ',';
  row += std::to_string(p.evaluations);
  row += ',';
  for (std::size_t i = 0; i < p.bits.size(); ++i) {
    if (i > 0) row += '|';
    row += std::to_string(p.bits[i]);
  }
  return row;
}

}  // namespace

Server::Server(ServerConfig cfg)
    : cfg_(cfg), cache_(cfg.cache_capacity) {}

Server::~Server() { stop(); }

void Server::start() {
  PSDACC_EXPECTS(!started_);
  listener_ = std::make_unique<ListenSocket>(cfg_.port);
  pool_ = std::make_unique<runtime::ThreadPool>(
      cfg_.pool_workers >= 1 ? cfg_.pool_workers : 1);
  queue_ = std::make_unique<JobQueue>(
      cfg_.job_workers >= 1 ? cfg_.job_workers : 1, cfg_.max_queue_depth);
  accept_thread_ = std::thread([this] { accept_loop(); });
  started_ = true;
}

std::uint16_t Server::port() const {
  return listener_ ? listener_->port() : 0;
}

void Server::stop() {
  if (!started_) return;
  if (stopping_.exchange(true)) return;
  // Ordering matters: close the front door, then drain admitted jobs (the
  // executors deliver their responses while connection threads wait on
  // them), then unblock any connection thread still parked in read_frame.
  listener_->shutdown();
  if (accept_thread_.joinable()) accept_thread_.join();
  queue_->drain_and_stop();
  {
    std::lock_guard lock(conns_mutex_);
    for (const auto& conn : conns_) conn->sock.shutdown();
  }
  reap_connections(/*all=*/true);
}

ServerStats Server::stats() const {
  ServerStats out;
  {
    std::lock_guard lock(stats_mutex_);
    out.connections = connections_;
    out.frames = frames_;
    out.jobs_accepted = jobs_accepted_;
    out.jobs_rejected = jobs_rejected_;
    out.jobs_completed = jobs_completed_;
    out.jobs_failed = jobs_failed_;
    out.jobs_timeout = jobs_timeout_;
    out.opt_probes_full = opt_probes_full_;
    out.opt_probes_cached = opt_probes_cached_;
    out.opt_probes_delta = opt_probes_delta_;
    out.latency_count = latency_.count();
    out.latency_p50_us = latency_.quantile_us(0.50);
    out.latency_p95_us = latency_.quantile_us(0.95);
  }
  out.jobs_running = queue_ ? queue_->running() : 0;
  out.cache_hits = cache_.hits();
  out.cache_misses = cache_.misses();
  out.cache_size = cache_.size();
  return out;
}

void Server::accept_loop() {
  for (;;) {
    Socket sock = listener_->accept_connection();
    if (!sock.valid() || stopping_.load()) break;
    {
      std::lock_guard lock(stats_mutex_);
      ++connections_;
    }
    reap_connections(/*all=*/false);
    auto conn = std::make_unique<Connection>();
    conn->sock = std::move(sock);
    Connection* raw = conn.get();
    {
      std::lock_guard lock(conns_mutex_);
      conns_.push_back(std::move(conn));
    }
    raw->thread = std::thread([this, raw] { serve_connection(*raw); });
  }
}

void Server::reap_connections(bool all) {
  std::vector<std::unique_ptr<Connection>> finished;
  {
    std::lock_guard lock(conns_mutex_);
    for (auto it = conns_.begin(); it != conns_.end();) {
      if (all || (*it)->done.load()) {
        finished.push_back(std::move(*it));
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (const auto& conn : finished)
    if (conn->thread.joinable()) conn->thread.join();
}

void Server::serve_connection(Connection& conn) {
  for (;;) {
    Frame frame;
    const ReadStatus status = read_frame(conn.sock, frame);
    if (status == ReadStatus::kClosed || status == ReadStatus::kTruncated)
      break;  // peer gone (possibly mid-frame) — nothing to answer
    if (status != ReadStatus::kOk) {  // kBadTag / kOversized
      send_error(conn.sock, error_code::kProtocol, to_string(status));
      break;  // framing is lost; the connection cannot be resynchronized
    }
    {
      std::lock_guard lock(stats_mutex_);
      ++frames_;
    }
    bool keep = true;
    switch (frame.type) {
      case FrameType::kStatsQuery:
        keep = write_frame(conn.sock, FrameType::kStatsReply,
                           stats().to_text());
        break;
      case FrameType::kSubmitEval:
        handle_eval(conn.sock, frame.payload);
        break;
      case FrameType::kSubmitOpt:
        handle_opt(conn.sock, frame.payload);
        break;
      case FrameType::kSubmitSweep:
        handle_sweep(conn.sock, frame.payload);
        break;
      default:
        send_error(conn.sock, error_code::kProtocol,
                   "server-to-client frame type in a request");
        keep = false;
        break;
    }
    if (!keep) break;
  }
  // Half-close only: stop() may call shutdown() on this socket from
  // another thread at any moment, so the fd must stay allocated (close()
  // writes fd_ and would race). The peer still sees an immediate FIN; the
  // fd is released when the reaped Connection is destroyed.
  conn.sock.shutdown();
  conn.done.store(true);
}

void Server::handle_eval(const Socket& sock, const std::string& payload) {
  const auto submitted = std::chrono::steady_clock::now();
  JobEnvelope env;
  try {
    env = parse_envelope(payload);
  } catch (const EnvelopeError& e) {
    send_error(sock, error_code::kBadRequest, e.what());
    return;
  }
  sfg::Scenario scenario;
  try {
    scenario = sfg::parse_scenario(env.document);
  } catch (const sfg::ParseError& e) {
    std::string extra;
    append_kv(extra, "line", static_cast<std::uint64_t>(e.line()));
    append_kv(extra, "column", static_cast<std::uint64_t>(e.column()));
    send_error(sock, error_code::kParse, e.message(), extra);
    return;
  }
  // The key hashes the *canonical* form, so submissions differing only in
  // formatting (or carrying stale `expect` sections) still collide.
  const ContentHash hash =
      sfg::content_hash(scenario.graph, scenario.config);
  if (auto cached = cache_.lookup(hash)) {
    std::string response = "status=OK\n";
    append_kv(response, "cache", "hit");
    append_kv(response, "hash", hash.to_string());
    response += *cached;
    record_latency(submitted);
    write_frame(sock, FrameType::kResult, response);
    return;
  }
  const auto deadline = deadline_for(env.timeout);
  // The connection thread blocks on the job, so the executor may write to
  // the socket and capture these locals by reference without a race.
  std::promise<void> done;
  auto finished = done.get_future();
  const bool admitted = queue_->try_submit([&, this] {
    try {
      run_eval_job(sock, scenario, hash, deadline, submitted);
    } catch (...) {  // NOLINT(bugprone-empty-catch) — reported inside
    }
    done.set_value();
  });
  if (!admitted) {
    {
      std::lock_guard lock(stats_mutex_);
      ++jobs_rejected_;
    }
    send_error(sock, error_code::kRejectedBusy,
               "job queue is at capacity; resubmit later");
    return;
  }
  {
    std::lock_guard lock(stats_mutex_);
    ++jobs_accepted_;
  }
  finished.wait();
}

void Server::run_eval_job(
    const Socket& sock, const sfg::Scenario& scenario,
    const ContentHash& hash,
    std::optional<std::chrono::steady_clock::time_point> deadline,
    std::chrono::steady_clock::time_point submitted) {
  const auto expired = [&deadline] {
    return deadline.has_value() &&
           std::chrono::steady_clock::now() >= *deadline;
  };
  if (expired()) {  // spent its whole budget waiting in the queue
    {
      std::lock_guard lock(stats_mutex_);
      ++jobs_timeout_;
    }
    send_error(sock, error_code::kTimeout,
               "deadline expired before evaluation started");
    return;
  }
  std::string body;
  try {
    // Mirror sfg::evaluate_expected engine by engine — the reason a served
    // response matches the golden corpus to the same bits — with a
    // deadline check between engines.
    const core::EngineOptions opts =
        sfg::engine_options_for(scenario.config);
    std::string lines;
    std::uint64_t engines_run = 0;
    for (const core::EngineKind kind : scenario.config.engines) {
      if (!core::engine_supports(kind, scenario.graph)) continue;
      if (expired()) {
        {
          std::lock_guard lock(stats_mutex_);
          ++jobs_timeout_;
        }
        std::string extra;
        append_kv(extra, "engines_completed", engines_run);
        send_error(sock, error_code::kTimeout,
                   "deadline expired between engines", extra);
        return;
      }
      const auto engine = core::make_engine(kind, scenario.graph, opts);
      append_kv(lines, core::to_string(kind),
                engine->output_noise_power());
      ++engines_run;
    }
    append_kv(body, "engines", engines_run);
    body += lines;
  } catch (const std::exception& e) {
    {
      std::lock_guard lock(stats_mutex_);
      ++jobs_failed_;
    }
    send_error(sock, error_code::kInternal, e.what());
    return;
  }
  // Cache the payload *bytes*: a later hit replays them verbatim, making
  // resubmission responses bit-identical by construction.
  cache_.insert(hash, body);
  std::string response = "status=OK\n";
  append_kv(response, "cache", "miss");
  append_kv(response, "hash", hash.to_string());
  response += body;
  {
    std::lock_guard lock(stats_mutex_);
    ++jobs_completed_;
  }
  record_latency(submitted);
  write_frame(sock, FrameType::kResult, response);
}

void Server::handle_opt(const Socket& sock, const std::string& payload) {
  const auto submitted = std::chrono::steady_clock::now();
  JobEnvelope env;
  try {
    env = parse_envelope(payload);
  } catch (const EnvelopeError& e) {
    send_error(sock, error_code::kBadRequest, e.what());
    return;
  }
  sfg::Scenario scenario;
  try {
    scenario = sfg::parse_scenario(env.document);
  } catch (const sfg::ParseError& e) {
    std::string extra;
    append_kv(extra, "line", static_cast<std::uint64_t>(e.line()));
    append_kv(extra, "column", static_cast<std::uint64_t>(e.column()));
    send_error(sock, error_code::kParse, e.message(), extra);
    return;
  }
  if (scenario.graph.noise_sources().empty()) {
    send_error(sock, error_code::kBadRequest,
               "graph has no quantization noise sources to optimize");
    return;
  }
  if (!core::engine_supports(env.optimizer.engine, scenario.graph)) {
    send_error(sock, error_code::kUnsupported,
               "requested probe engine cannot evaluate this graph");
    return;
  }
  const auto deadline = deadline_for(env.timeout);
  std::promise<void> done;
  auto finished = done.get_future();
  const bool admitted = queue_->try_submit([&, this] {
    try {
      run_opt_job(sock, scenario, env.optimizer, deadline, submitted);
    } catch (...) {  // NOLINT(bugprone-empty-catch) — reported inside
    }
    done.set_value();
  });
  if (!admitted) {
    {
      std::lock_guard lock(stats_mutex_);
      ++jobs_rejected_;
    }
    send_error(sock, error_code::kRejectedBusy,
               "job queue is at capacity; resubmit later");
    return;
  }
  {
    std::lock_guard lock(stats_mutex_);
    ++jobs_accepted_;
  }
  finished.wait();
}

void Server::run_opt_job(
    const Socket& sock, sfg::Scenario& scenario, const OptimizerSpec& spec,
    std::optional<std::chrono::steady_clock::time_point> deadline,
    std::chrono::steady_clock::time_point submitted) {
  if (deadline.has_value() &&
      std::chrono::steady_clock::now() >= *deadline) {
    {
      std::lock_guard lock(stats_mutex_);
      ++jobs_timeout_;
    }
    send_error(sock, error_code::kTimeout,
               "deadline expired before optimization started");
    return;
  }
  try {
    opt::OptimizerConfig cfg;
    cfg.noise_budget = spec.noise_budget;
    cfg.min_bits = spec.min_bits;
    cfg.max_bits = spec.max_bits;
    cfg.n_psd = spec.n_psd != 0 ? spec.n_psd : scenario.config.n_psd;
    cfg.engine = spec.engine;
    cfg.engine_opts = sfg::engine_options_for(scenario.config);
    cfg.pool = pool_.get();
    // The deadline check doubles as the progress stream: it is polled
    // exactly once per accepted probe round, between rounds, so reading
    // probe_counters() here is race-free and one PROG frame goes out per
    // descent step. The optimizer pointer is filled in after construction;
    // the first poll only happens inside a strategy run.
    struct ProgressState {
      opt::WordlengthOptimizer* optimizer = nullptr;
      std::uint64_t steps = 0;
    };
    auto progress = std::make_shared<ProgressState>();
    cfg.cancel_check = [&sock, progress, deadline] {
      ++progress->steps;
      if (progress->optimizer != nullptr) {
        const auto counters = progress->optimizer->probe_counters();
        std::string text;
        append_kv(text, "step", progress->steps);
        append_kv(text, "probes_full",
                  static_cast<std::uint64_t>(counters.full));
        append_kv(text, "probes_cached",
                  static_cast<std::uint64_t>(counters.cached));
        append_kv(text, "probes_delta",
                  static_cast<std::uint64_t>(counters.delta));
        // Best effort: a vanished client fails the write; the job still
        // runs to completion (its result is cheap to discard).
        write_frame(sock, FrameType::kProgress, text);
      }
      return deadline.has_value() &&
             std::chrono::steady_clock::now() >= *deadline;
    };
    opt::WordlengthOptimizer optimizer(
        scenario.graph, scenario.graph.noise_sources(), cfg);
    progress->optimizer = &optimizer;
    // parse_envelope validated the token against the same vocabulary
    // run_strategy dispatches on, so this cannot throw on the name.
    opt::search::StrategySpec strategy;
    strategy.name = spec.strategy;
    strategy.anneal.seed = spec.seed;
    const opt::OptimizerResult result =
        opt::search::run_strategy(optimizer, strategy);
    record_probe_counters(optimizer.probe_counters());
    std::string kv;
    append_kv(kv, "strategy", spec.strategy);
    append_kv(kv, "feasible", std::uint64_t{result.feasible ? 1u : 0u});
    append_kv(kv, "cancelled", std::uint64_t{result.cancelled ? 1u : 0u});
    append_kv(kv, "cost", result.cost);
    append_kv(kv, "noise", result.noise);
    append_kv(kv, "evaluations",
              static_cast<std::uint64_t>(result.evaluations));
    append_kv(kv, "steps", progress->steps);
    append_kv(kv, "bits", format_bits(result.bits));
    if (result.cancelled) {
      {
        std::lock_guard lock(stats_mutex_);
        ++jobs_timeout_;
      }
      record_latency(submitted);
      send_error(sock, error_code::kTimeout,
                 "deadline expired; best partial assignment attached", kv);
      return;
    }
    {
      std::lock_guard lock(stats_mutex_);
      ++jobs_completed_;
    }
    record_latency(submitted);
    write_frame(sock, FrameType::kResult, "status=OK\n" + kv);
  } catch (const std::exception& e) {
    {
      std::lock_guard lock(stats_mutex_);
      ++jobs_failed_;
    }
    send_error(sock, error_code::kInternal, e.what());
  }
}

void Server::handle_sweep(const Socket& sock, const std::string& payload) {
  const auto submitted = std::chrono::steady_clock::now();
  JobEnvelope env;
  try {
    env = parse_envelope(payload);
  } catch (const EnvelopeError& e) {
    send_error(sock, error_code::kBadRequest, e.what());
    return;
  }
  sfg::Scenario scenario;
  try {
    scenario = sfg::parse_scenario(env.document);
  } catch (const sfg::ParseError& e) {
    std::string extra;
    append_kv(extra, "line", static_cast<std::uint64_t>(e.line()));
    append_kv(extra, "column", static_cast<std::uint64_t>(e.column()));
    send_error(sock, error_code::kParse, e.message(), extra);
    return;
  }
  if (scenario.graph.noise_sources().empty()) {
    send_error(sock, error_code::kBadRequest,
               "graph has no quantization noise sources to optimize");
    return;
  }
  if (!core::engine_supports(env.sweep.engine, scenario.graph)) {
    send_error(sock, error_code::kUnsupported,
               "requested probe engine cannot evaluate this graph");
    return;
  }
  // Resolve the ladder up front: a bad ladder is the client's mistake
  // (BAD_REQUEST), not an execution failure.
  std::vector<double> budgets = env.sweep.budgets;
  if (budgets.empty()) {
    try {
      budgets = opt::search::log_spaced_budgets(
          env.sweep.budget_lo, env.sweep.budget_hi, env.sweep.points);
    } catch (const std::invalid_argument& e) {
      send_error(sock, error_code::kBadRequest, e.what());
      return;
    }
  }
  for (const double b : budgets) {
    if (std::isfinite(b) && b > 0.0) continue;
    send_error(sock, error_code::kBadRequest,
               "sweep budgets must be finite and positive");
    return;
  }
  // Sweep cache key: the canonical sweep section bytes + the scenario's
  // own content hash — two PARJ submissions collide exactly when both the
  // sweep parameters and the evaluation are interchangeable. The key
  // space is disjoint from EVAL's ("sweep {" is not a scenario document).
  const ContentHash hash = sfg::content_hash_bytes(
      encode_sweep_section(env.sweep) +
      sfg::content_hash(scenario.graph, scenario.config).to_string());
  if (auto cached = cache_.lookup(hash)) {
    std::string response = "status=OK\n";
    append_kv(response, "cache", "hit");
    append_kv(response, "hash", hash.to_string());
    response += *cached;
    record_latency(submitted);
    // A cache hit replays the terminal frame only — per-point PROG frames
    // stream on computation, not on replay.
    write_frame(sock, FrameType::kResult, response);
    return;
  }
  const auto deadline = deadline_for(env.timeout);
  std::promise<void> done;
  auto finished = done.get_future();
  const bool admitted = queue_->try_submit([&, this] {
    try {
      run_sweep_job(sock, scenario, env.sweep, budgets, hash, deadline,
                    submitted);
    } catch (...) {  // NOLINT(bugprone-empty-catch) — reported inside
    }
    done.set_value();
  });
  if (!admitted) {
    {
      std::lock_guard lock(stats_mutex_);
      ++jobs_rejected_;
    }
    send_error(sock, error_code::kRejectedBusy,
               "job queue is at capacity; resubmit later");
    return;
  }
  {
    std::lock_guard lock(stats_mutex_);
    ++jobs_accepted_;
  }
  finished.wait();
}

void Server::run_sweep_job(
    const Socket& sock, sfg::Scenario& scenario, const SweepSpec& spec,
    const std::vector<double>& budgets, const ContentHash& hash,
    std::optional<std::chrono::steady_clock::time_point> deadline,
    std::chrono::steady_clock::time_point submitted) {
  if (deadline.has_value() &&
      std::chrono::steady_clock::now() >= *deadline) {
    {
      std::lock_guard lock(stats_mutex_);
      ++jobs_timeout_;
    }
    send_error(sock, error_code::kTimeout,
               "deadline expired before sweep started");
    return;
  }
  try {
    opt::search::SweepConfig cfg;
    cfg.budgets = budgets;
    cfg.base.min_bits = spec.min_bits;
    cfg.base.max_bits = spec.max_bits;
    cfg.base.n_psd = spec.n_psd != 0 ? spec.n_psd : scenario.config.n_psd;
    cfg.base.engine = spec.engine;
    cfg.base.engine_opts = sfg::engine_options_for(scenario.config);
    cfg.base.pool = pool_.get();
    cfg.base.cancel_check = [deadline] {
      return deadline.has_value() &&
             std::chrono::steady_clock::now() >= *deadline;
    };
    cfg.strategy.name = spec.strategy;
    cfg.strategy.anneal.seed = spec.seed;
    // Serial fan-out: points run in ladder order (one PROG each, in
    // order) and the server pool accelerates each point's probe rounds
    // instead — per-point results are bit-identical either way.
    cfg.workers = 1;
    cfg.on_point = [&sock](std::size_t index,
                           const opt::search::ParetoPoint& p) {
      if (p.cancelled) return;  // completed points only
      std::string text;
      append_kv(text, "point", static_cast<std::uint64_t>(index));
      append_kv(text, "budget", p.budget);
      append_kv(text, "cost", p.cost);
      append_kv(text, "noise", p.noise);
      append_kv(text, "feasible", std::uint64_t{p.feasible ? 1u : 0u});
      // Best effort, like optimizer PROG frames: a vanished client fails
      // the write and the sweep still runs to completion.
      write_frame(sock, FrameType::kProgress, text);
    };
    opt::search::ParetoSweep sweep(
        scenario.graph, scenario.graph.noise_sources(), cfg);
    const std::vector<opt::search::ParetoPoint> points =
        sweep.run_points();
    const auto front = opt::search::ParetoFront::from_points(points);
    const auto counters = sweep.probe_counters();
    record_probe_counters(counters);
    std::uint64_t completed = 0;
    bool cancelled = false;
    for (const auto& p : points) {
      if (p.cancelled) cancelled = true;
      else ++completed;
    }
    std::string kv;
    append_kv(kv, "strategy", spec.strategy);
    append_kv(kv, "points", static_cast<std::uint64_t>(points.size()));
    append_kv(kv, "completed", completed);
    append_kv(kv, "front", static_cast<std::uint64_t>(
                               front.points().size()));
    append_kv(kv, "probes_full", static_cast<std::uint64_t>(counters.full));
    append_kv(kv, "probes_cached",
              static_cast<std::uint64_t>(counters.cached));
    append_kv(kv, "probes_delta",
              static_cast<std::uint64_t>(counters.delta));
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (points[i].cancelled) continue;
      append_kv(kv, "point_" + std::to_string(i),
                format_point(points[i]));
    }
    for (std::size_t i = 0; i < front.points().size(); ++i)
      append_kv(kv, "front_" + std::to_string(i),
                format_point(front.points()[i]));
    if (cancelled) {
      {
        std::lock_guard lock(stats_mutex_);
        ++jobs_timeout_;
      }
      record_latency(submitted);
      send_error(sock, error_code::kTimeout,
                 "deadline expired; completed points attached", kv);
      return;
    }
    // Cache the body bytes (completed sweeps only): a later hit replays
    // them verbatim, the same bit-identity contract as EVAL.
    cache_.insert(hash, kv);
    std::string response = "status=OK\n";
    append_kv(response, "cache", "miss");
    append_kv(response, "hash", hash.to_string());
    response += kv;
    {
      std::lock_guard lock(stats_mutex_);
      ++jobs_completed_;
    }
    record_latency(submitted);
    write_frame(sock, FrameType::kResult, response);
  } catch (const std::exception& e) {
    {
      std::lock_guard lock(stats_mutex_);
      ++jobs_failed_;
    }
    send_error(sock, error_code::kInternal, e.what());
  }
}

void Server::record_probe_counters(
    const core::AccuracyEngine::EvalCounters& c) {
  std::lock_guard lock(stats_mutex_);
  opt_probes_full_ += c.full;
  opt_probes_cached_ += c.cached;
  opt_probes_delta_ += c.delta;
}

bool Server::send_error(const Socket& sock, std::string_view code,
                        std::string_view message, std::string_view extra) {
  std::string payload = "status=ERROR\n";
  append_kv(payload, "code", code);
  append_kv(payload, "message", sanitize_message(message));
  payload += extra;
  return write_frame(sock, FrameType::kError, payload);
}

std::optional<std::chrono::steady_clock::time_point> Server::deadline_for(
    std::chrono::milliseconds requested) const {
  auto effective =
      requested.count() > 0 ? requested : cfg_.default_timeout;
  if (cfg_.max_timeout.count() > 0 &&
      (effective.count() <= 0 || effective > cfg_.max_timeout))
    effective = cfg_.max_timeout;
  if (effective.count() <= 0) return std::nullopt;
  return std::chrono::steady_clock::now() + effective;
}

void Server::record_latency(
    std::chrono::steady_clock::time_point submitted) {
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - submitted;
  std::lock_guard lock(stats_mutex_);
  latency_.record_seconds(elapsed.count());
}

}  // namespace psdacc::serve
