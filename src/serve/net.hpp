/// @file net.hpp
/// Minimal POSIX TCP wrappers for the serving layer: RAII sockets bound to
/// the IPv4 loopback, exact-length reads/writes, and a listener that can be
/// unblocked for shutdown. Loopback-only on purpose — psdacc-serve is a
/// local evaluation daemon, not an internet-facing service; anything
/// remote belongs behind a reverse proxy that owns auth and TLS.
#pragma once

#include <cstddef>
#include <cstdint>

namespace psdacc::serve {

/// RAII connected-socket file descriptor. Movable; closes on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  void close();
  /// Half-closes both directions without releasing the fd: a peer (or
  /// another thread of this process) blocked in read/accept on it wakes
  /// up. Safe to call while another thread uses the socket — the fd stays
  /// allocated until close(), so it cannot be recycled under that thread.
  void shutdown() const;

  /// Reads exactly @p n bytes. False on EOF or error before @p n bytes
  /// arrived (EINTR retried).
  bool read_exact(void* buf, std::size_t n) const;
  /// Reads up to @p n bytes once; returns the count, 0 on EOF, -1 on
  /// error. The form the truncated-frame path uses to distinguish "clean
  /// EOF at a frame boundary" from "EOF inside a frame".
  long read_some(void* buf, std::size_t n) const;
  /// Writes all @p n bytes. False on error; SIGPIPE is suppressed
  /// (MSG_NOSIGNAL), so a vanished client surfaces as a failed write, not
  /// a process signal.
  bool write_all(const void* buf, std::size_t n) const;

 private:
  int fd_ = -1;
};

/// Listening socket on 127.0.0.1:@p port (0 = kernel-assigned ephemeral
/// port, reported by port()). Throws std::runtime_error on bind failure.
class ListenSocket {
 public:
  explicit ListenSocket(std::uint16_t port);

  std::uint16_t port() const { return port_; }
  /// Blocks for the next connection; returns an invalid Socket once
  /// shutdown() was called (or on a non-retryable accept error).
  Socket accept_connection() const;
  /// Unblocks accept_connection() for shutdown.
  void shutdown() const { sock_.shutdown(); }

 private:
  Socket sock_;
  std::uint16_t port_ = 0;
};

/// Connects to 127.0.0.1:@p port. Throws std::runtime_error on failure.
Socket connect_local(std::uint16_t port);

}  // namespace psdacc::serve
