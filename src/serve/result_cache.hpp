/// @file result_cache.hpp
/// Bounded LRU memo of evaluation results, keyed by the content hash of
/// the canonical (graph + config) document — the serving layer's outermost
/// cache tier, above the engines' revision memos and per-source
/// SourceTermCaches. A hit answers a resubmitted job without touching an
/// engine at all, and replays the *stored* payload bytes, so identical
/// submissions get bit-identical responses by construction.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

#include "sfg/serialize.hpp"

namespace psdacc::serve {

/// The 128-bit cache key (see sfg::content_hash): hashes the canonical
/// serialized form, so two submissions collide exactly when their
/// evaluations are interchangeable.
using ContentHash = sfg::ContentHash;

/// Thread-safe bounded LRU: capacity 0 disables caching entirely.
class ResultCache {
 public:
  explicit ResultCache(std::size_t capacity) : capacity_(capacity) {}

  /// The stored payload for @p key (refreshing its recency), or empty.
  std::optional<std::string> lookup(const ContentHash& key);
  /// Stores @p payload under @p key, evicting the least recently used
  /// entry beyond capacity. Overwrites an existing entry (a re-computed
  /// result for the same key is byte-identical anyway, by determinism).
  void insert(const ContentHash& key, std::string payload);

  std::size_t size() const;
  std::uint64_t hits() const;
  std::uint64_t misses() const;

 private:
  struct Hasher {
    std::size_t operator()(const ContentHash& h) const {
      // The key is already a high-quality 128-bit digest; folding the
      // halves is as good as any post-mix.
      return static_cast<std::size_t>(h.hi ^ h.lo);
    }
  };
  using Entry = std::pair<ContentHash, std::string>;

  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<ContentHash, std::list<Entry>::iterator, Hasher> map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace psdacc::serve
