/// @file stats.hpp
/// Per-server observability: monotonically increasing job/cache counters
/// and a fixed-bucket latency histogram cheap enough to update on every
/// completed job (one increment, no allocation, no sort).
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace psdacc::serve {

/// Log2-bucketed latency histogram over microseconds: bucket i counts
/// latencies in [2^i, 2^(i+1)) us (bucket 0 also takes sub-microsecond
/// samples; the last bucket takes everything beyond ~2^31 us ≈ 36 min).
/// Quantiles are reported as the upper bound of the bucket holding the
/// rank — a <= 2x overestimate by construction, which is the right bias
/// for an operational p95.
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 32;

  void record_seconds(double seconds);
  std::uint64_t count() const { return count_; }
  /// Upper bound (in us) of the bucket containing quantile @p q in [0, 1].
  /// 0 when empty.
  double quantile_us(double q) const;

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
};

/// Snapshot of one server's lifetime counters, rendered into the STTS
/// stats frame as key=value lines (so tests and dashboards parse it with
/// the same kv reader the rest of the protocol uses).
struct ServerStats {
  std::uint64_t connections = 0;     ///< accepted TCP connections
  std::uint64_t frames = 0;          ///< frames successfully read
  std::uint64_t jobs_accepted = 0;   ///< admitted into the queue
  std::uint64_t jobs_rejected = 0;   ///< turned away (REJECTED_BUSY)
  std::uint64_t jobs_completed = 0;  ///< finished with a result
  std::uint64_t jobs_failed = 0;     ///< finished with an error
  std::uint64_t jobs_timeout = 0;    ///< cancelled by their deadline
  std::uint64_t jobs_running = 0;    ///< currently executing
  std::uint64_t cache_hits = 0;      ///< answered from the ResultCache
  std::uint64_t cache_misses = 0;    ///< evaluated, then cached
  std::uint64_t cache_size = 0;      ///< entries currently cached
  /// Aggregate optimizer probe counters over every finished OPTJ/PARJ job
  /// (core::AccuracyEngine::EvalCounters totals): full re-evaluations,
  /// plan-cache hits, and incremental delta probes. delta >> full is the
  /// serving-side signature of the delta probe path.
  std::uint64_t opt_probes_full = 0;
  std::uint64_t opt_probes_cached = 0;
  std::uint64_t opt_probes_delta = 0;
  std::uint64_t latency_count = 0;   ///< samples in the histogram
  double latency_p50_us = 0.0;
  double latency_p95_us = 0.0;

  /// key=value rendering (the STTS payload).
  std::string to_text() const;
};

}  // namespace psdacc::serve
