#include "fixedpoint/format.hpp"

#include <cmath>

#include "support/assert.hpp"

namespace psdacc::fxp {

double FixedPointFormat::step() const {
  return std::ldexp(1.0, -fractional_bits);
}

double FixedPointFormat::max_value() const {
  const int magnitude_bits =
      is_signed ? integer_bits - 1 : integer_bits;
  return std::ldexp(1.0, magnitude_bits) - step();
}

double FixedPointFormat::min_value() const {
  if (!is_signed) return 0.0;
  return -std::ldexp(1.0, integer_bits - 1);
}

std::string FixedPointFormat::to_string() const {
  std::string s = is_signed ? "sQ" : "uQ";
  s += std::to_string(integer_bits) + "." + std::to_string(fractional_bits);
  switch (rounding) {
    case RoundingMode::kTruncate: s += "/trunc"; break;
    case RoundingMode::kRoundNearest: s += "/round"; break;
    case RoundingMode::kConvergent: s += "/conv"; break;
  }
  switch (overflow) {
    case OverflowMode::kSaturate: s += "/sat"; break;
    case OverflowMode::kWrap: s += "/wrap"; break;
  }
  return s;
}

FixedPointFormat q_format(int integer_bits, int fractional_bits,
                          RoundingMode rounding) {
  PSDACC_EXPECTS(integer_bits >= 1);
  PSDACC_EXPECTS(fractional_bits >= 0);
  FixedPointFormat fmt;
  fmt.integer_bits = integer_bits;
  fmt.fractional_bits = fractional_bits;
  fmt.is_signed = true;
  fmt.rounding = rounding;
  fmt.overflow = OverflowMode::kSaturate;
  return fmt;
}

}  // namespace psdacc::fxp
