// Quantization of double-precision values to a fixed-point grid.
//
// The simulation engine quantizes after every arithmetic operation; the
// analytical engines never quantize — they model the same operation with the
// PQN statistics from noise_model.hpp.
#pragma once

#include <cmath>
#include <span>
#include <vector>

#include "fixedpoint/format.hpp"

namespace psdacc::fxp {

/// Precompiled per-format quantizer: caches the step, its reciprocal, and
/// the representable range once so the per-sample path is a few inlined
/// arithmetic ops instead of repeated ldexp calls. Build one outside a
/// sample loop; `quantize()` below is the one-shot convenience over it.
class QuantizerKernel {
 public:
  explicit QuantizerKernel(const FixedPointFormat& fmt)
      : step_(fmt.step()),
        inv_step_(1.0 / fmt.step()),
        lo_(fmt.min_value()),
        hi_(fmt.max_value()),
        rounding_(fmt.rounding),
        overflow_(fmt.overflow) {}

  double operator()(double value) const {
    // step is a power of two, so multiplying by the cached reciprocal is
    // bit-identical to dividing by the step.
    const double scaled = value * inv_step_;
    double units = 0.0;
    switch (rounding_) {
      case RoundingMode::kTruncate:
        units = std::floor(scaled);
        break;
      case RoundingMode::kRoundNearest:
        units = std::floor(scaled + 0.5);
        break;
      case RoundingMode::kConvergent: {
        // Half-to-even, implemented explicitly so the result does not
        // depend on the floating-point environment.
        const double fl = std::floor(scaled);
        const double frac = scaled - fl;
        if (frac > 0.5) {
          units = fl + 1.0;
        } else if (frac < 0.5) {
          units = fl;
        } else {
          units = (std::fmod(fl, 2.0) == 0.0) ? fl : fl + 1.0;
        }
        break;
      }
    }
    const double out = units * step_;
    if (out >= lo_ && out <= hi_) return out;
    switch (overflow_) {
      case OverflowMode::kSaturate:
        return out < lo_ ? lo_ : hi_;
      case OverflowMode::kWrap: {
        const double range = hi_ - lo_ + step_;
        double wrapped = std::fmod(out - lo_, range);
        if (wrapped < 0.0) wrapped += range;
        return lo_ + wrapped;
      }
    }
    return out;  // unreachable
  }

  // Compiled parameters, exposed so dsp::kernels::quantize_span can run the
  // same arithmetic lane-wise without rebuilding them per call.
  double step() const { return step_; }
  double inv_step() const { return inv_step_; }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  RoundingMode rounding() const { return rounding_; }
  OverflowMode overflow() const { return overflow_; }

 private:
  double step_;
  double inv_step_;
  double lo_;
  double hi_;
  RoundingMode rounding_;
  OverflowMode overflow_;
};

/// Quantizes `value` to the grid of `fmt` (rounding mode applied first, then
/// overflow handling).
double quantize(double value, const FixedPointFormat& fmt);

/// Element-wise quantization.
std::vector<double> quantize(std::span<const double> values,
                             const FixedPointFormat& fmt);

/// Stateless functor form, convenient for simulation pipelines.
class Quantizer {
 public:
  explicit Quantizer(FixedPointFormat fmt) : fmt_(fmt) {}
  double operator()(double v) const { return quantize(v, fmt_); }
  const FixedPointFormat& format() const { return fmt_; }

 private:
  FixedPointFormat fmt_;
};

}  // namespace psdacc::fxp
