// Quantization of double-precision values to a fixed-point grid.
//
// The simulation engine quantizes after every arithmetic operation; the
// analytical engines never quantize — they model the same operation with the
// PQN statistics from noise_model.hpp.
#pragma once

#include <span>
#include <vector>

#include "fixedpoint/format.hpp"

namespace psdacc::fxp {

/// Quantizes `value` to the grid of `fmt` (rounding mode applied first, then
/// overflow handling).
double quantize(double value, const FixedPointFormat& fmt);

/// Element-wise quantization.
std::vector<double> quantize(std::span<const double> values,
                             const FixedPointFormat& fmt);

/// Stateless functor form, convenient for simulation pipelines.
class Quantizer {
 public:
  explicit Quantizer(FixedPointFormat fmt) : fmt_(fmt) {}
  double operator()(double v) const { return quantize(v, fmt_); }
  const FixedPointFormat& format() const { return fmt_; }

 private:
  FixedPointFormat fmt_;
};

}  // namespace psdacc::fxp
