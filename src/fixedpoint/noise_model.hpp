/// @file noise_model.hpp
/// Pseudo-quantization-noise (PQN) statistics, after Widrow & Kollar.
///
/// When a continuous-amplitude signal is quantized with step q = 2^-d, the
/// error b = Q(x) - x behaves (under the PQN conditions the paper lists in
/// Section II) as an additive noise, white except at DC, with:
///
///   truncation:      b in [-q, 0),   mu = -q/2, sigma^2 = q^2/12
///   round-nearest:   b in [-q/2,q/2], mu = 0,   sigma^2 = q^2/12
///
/// When the input is *already quantized* with d_in fractional bits and is
/// narrowed to d_out < d_in bits, the error is discrete and the classical
/// corrected moments apply (Constantinides/Menard form), with
/// k = d_in - d_out dropped bits:
///
///   truncation:    mu = -(q_out - q_in)/2,  sigma^2 = (q_out^2 - q_in^2)/12
///   round-nearest: mu = q_in/2 * [k > 0],   sigma^2 = (q_out^2 - q_in^2)/12
///     (round-half-up has a +q_in/2 bias on the discrete grid)
#pragma once

#include "fixedpoint/format.hpp"

namespace psdacc::fxp {

/// First two moments of an additive quantization-noise source.
struct NoiseMoments {
  double mean = 0.0;      ///< Deterministic (DC) error component mu.
  double variance = 0.0;  ///< Stochastic error power sigma^2.

  /// Total noise power mu^2 + sigma^2.
  double power() const { return mean * mean + variance; }

  bool operator==(const NoiseMoments&) const = default;
};

/// Moments for quantizing a continuous-amplitude signal to @p fmt.
/// @param fmt target format; its rounding mode selects the mu formula
/// @return PQN moments of the additive error
NoiseMoments continuous_quantization_noise(const FixedPointFormat& fmt);

/// Moments for narrowing an already-quantized signal (discrete-error,
/// Constantinides/Menard corrected form).
/// @param in_fractional_bits fractional bits d_in of the incoming signal
/// @param fmt                target format with d_out fractional bits
/// @return corrected moments; zero moments when no bits are dropped
NoiseMoments narrowing_quantization_noise(int in_fractional_bits,
                                          const FixedPointFormat& fmt);

}  // namespace psdacc::fxp
