// Dithered quantization — the approximate-computing knob that trades a
// little extra noise power for signal-independent, spectrally white error
// (making the PQN model of Eq. 10 hold even for pathological inputs).
//
// Non-subtractive dither d is added before rounding: y = Q(x + d).
//  * rectangular (RPDF, d ~ U(-q/2, q/2)): first error moment independent
//    of the signal; total error variance q^2/12 + q^2/12 = q^2/6.
//  * triangular (TPDF, d = sum of two U(-q/2, q/2)): first and second
//    moments independent; total error variance 2 q^2/12 + q^2/12 = q^2/4.
#pragma once

#include "fixedpoint/format.hpp"
#include "fixedpoint/noise_model.hpp"
#include "support/random.hpp"

namespace psdacc::fxp {

enum class DitherMode { kNone, kRectangular, kTriangular };

/// Moments of the total error of a dithered quantizer (rounding mode of
/// `fmt` applies to the post-dither rounding).
NoiseMoments dithered_quantization_noise(const FixedPointFormat& fmt,
                                         DitherMode mode);

/// Stateful dithered quantizer (owns its PRNG for reproducibility).
class DitheredQuantizer {
 public:
  DitheredQuantizer(FixedPointFormat fmt, DitherMode mode,
                    std::uint64_t seed = 0x5eed);

  double operator()(double x);
  const FixedPointFormat& format() const { return fmt_; }
  DitherMode mode() const { return mode_; }

 private:
  FixedPointFormat fmt_;
  DitherMode mode_;
  Xoshiro256 rng_;
};

}  // namespace psdacc::fxp
