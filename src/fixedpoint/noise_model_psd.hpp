// Eq. 10 of the paper: discrete PSD of a freshly generated quantization
// noise. White except at DC: S(0) = mu^2, S(k != 0) = sigma^2 / N_PSD.
//
// Discretized so that sum_k S[k] = mu^2 + sigma^2 * (N-1)/N with the paper's
// literal reading; psdacc instead spreads sigma^2 over the N-1 non-DC bins
// so the total is exactly mu^2 + sigma^2 (see NoiseSpectrum docs). The
// difference is O(1/N) and vanishes for the N_PSD >= 16 used everywhere.
#pragma once

#include <cstddef>
#include <vector>

#include "fixedpoint/noise_model.hpp"

namespace psdacc::fxp {

/// Builds the N-bin white-noise PSD of a source with the given moments.
std::vector<double> white_noise_psd(const NoiseMoments& moments,
                                    std::size_t n_bins);

}  // namespace psdacc::fxp
