// Fixed-point number formats.
//
// A format Q(i, f) has `integer_bits` i (including sign for signed formats)
// and `fractional_bits` f; values are k * 2^-f for integer k. The paper's
// experiments sweep f (written d there) from 8 to 32 bits.
#pragma once

#include <cstdint>
#include <string>

namespace psdacc::fxp {

/// How the dropped LSBs are treated when narrowing.
enum class RoundingMode {
  kTruncate,      // floor toward -infinity (two's-complement truncation)
  kRoundNearest,  // round half up
  kConvergent,    // round half to even
};

/// What happens on dynamic-range violation.
enum class OverflowMode {
  kSaturate,  // clamp to representable range
  kWrap,      // two's-complement wrap-around
};

struct FixedPointFormat {
  int integer_bits = 4;     // includes the sign bit when is_signed
  int fractional_bits = 12; // "d" in the paper
  bool is_signed = true;
  RoundingMode rounding = RoundingMode::kRoundNearest;
  OverflowMode overflow = OverflowMode::kSaturate;

  int word_length() const { return integer_bits + fractional_bits; }
  /// Quantization step q = 2^-f.
  double step() const;
  /// Largest representable value.
  double max_value() const;
  /// Smallest representable value (0 for unsigned).
  double min_value() const;
  /// e.g. "sQ4.12/round/sat".
  std::string to_string() const;

  bool operator==(const FixedPointFormat&) const = default;
};

/// Convenience builder for the common signed Q(i, d) with rounding+saturate.
FixedPointFormat q_format(int integer_bits, int fractional_bits,
                          RoundingMode rounding = RoundingMode::kRoundNearest);

}  // namespace psdacc::fxp
