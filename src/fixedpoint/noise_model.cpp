#include "fixedpoint/noise_model.hpp"

#include <cmath>

#include "support/assert.hpp"

namespace psdacc::fxp {

NoiseMoments continuous_quantization_noise(const FixedPointFormat& fmt) {
  const double q = fmt.step();
  NoiseMoments m;
  m.variance = q * q / 12.0;
  switch (fmt.rounding) {
    case RoundingMode::kTruncate:
      m.mean = -q / 2.0;
      break;
    case RoundingMode::kRoundNearest:
    case RoundingMode::kConvergent:
      m.mean = 0.0;
      break;
  }
  return m;
}

NoiseMoments narrowing_quantization_noise(int in_fractional_bits,
                                          const FixedPointFormat& fmt) {
  PSDACC_EXPECTS(in_fractional_bits >= fmt.fractional_bits);
  NoiseMoments m;
  if (in_fractional_bits == fmt.fractional_bits) return m;
  const double q_out = fmt.step();
  const double q_in = std::ldexp(1.0, -in_fractional_bits);
  m.variance = (q_out * q_out - q_in * q_in) / 12.0;
  switch (fmt.rounding) {
    case RoundingMode::kTruncate:
      m.mean = -(q_out - q_in) / 2.0;
      break;
    case RoundingMode::kRoundNearest:
      // Round-half-up on the discrete grid: the error distribution is
      // symmetric except for the tie value +q_out/2 taken with probability
      // q_in/q_out, so the bias is exactly q_in/2 regardless of how many
      // bits are dropped.
      m.mean = q_in / 2.0;
      break;
    case RoundingMode::kConvergent:
      m.mean = 0.0;
      break;
  }
  return m;
}

}  // namespace psdacc::fxp
