#include "fixedpoint/dither.hpp"

#include "fixedpoint/quantizer.hpp"

namespace psdacc::fxp {

NoiseMoments dithered_quantization_noise(const FixedPointFormat& fmt,
                                         DitherMode mode) {
  NoiseMoments m = continuous_quantization_noise(fmt);
  const double q = fmt.step();
  switch (mode) {
    case DitherMode::kNone:
      break;
    case DitherMode::kRectangular:
      m.variance += q * q / 12.0;
      break;
    case DitherMode::kTriangular:
      m.variance += 2.0 * q * q / 12.0;
      break;
  }
  return m;
}

DitheredQuantizer::DitheredQuantizer(FixedPointFormat fmt, DitherMode mode,
                                     std::uint64_t seed)
    : fmt_(fmt), mode_(mode), rng_(seed) {}

double DitheredQuantizer::operator()(double x) {
  const double q = fmt_.step();
  double dither = 0.0;
  switch (mode_) {
    case DitherMode::kNone:
      break;
    case DitherMode::kRectangular:
      dither = rng_.uniform(-q / 2.0, q / 2.0);
      break;
    case DitherMode::kTriangular:
      dither = rng_.uniform(-q / 2.0, q / 2.0) +
               rng_.uniform(-q / 2.0, q / 2.0);
      break;
  }
  return quantize(x + dither, fmt_);
}

}  // namespace psdacc::fxp
