#include "fixedpoint/quantizer.hpp"

#include <cmath>

#include "support/assert.hpp"

namespace psdacc::fxp {

double quantize(double value, const FixedPointFormat& fmt) {
  const double q = fmt.step();
  const double scaled = value / q;
  double units = 0.0;
  switch (fmt.rounding) {
    case RoundingMode::kTruncate:
      units = std::floor(scaled);
      break;
    case RoundingMode::kRoundNearest:
      units = std::floor(scaled + 0.5);
      break;
    case RoundingMode::kConvergent: {
      // Half-to-even, implemented explicitly so the result does not depend
      // on the floating-point environment.
      const double fl = std::floor(scaled);
      const double frac = scaled - fl;
      if (frac > 0.5) {
        units = fl + 1.0;
      } else if (frac < 0.5) {
        units = fl;
      } else {
        units = (std::fmod(fl, 2.0) == 0.0) ? fl : fl + 1.0;
      }
      break;
    }
  }
  double out = units * q;
  const double lo = fmt.min_value();
  const double hi = fmt.max_value();
  if (out >= lo && out <= hi) return out;
  switch (fmt.overflow) {
    case OverflowMode::kSaturate:
      return out < lo ? lo : hi;
    case OverflowMode::kWrap: {
      const double range = hi - lo + fmt.step();
      double wrapped = std::fmod(out - lo, range);
      if (wrapped < 0.0) wrapped += range;
      return lo + wrapped;
    }
  }
  return out;  // unreachable
}

std::vector<double> quantize(std::span<const double> values,
                             const FixedPointFormat& fmt) {
  std::vector<double> out(values.size());
  for (std::size_t i = 0; i < values.size(); ++i)
    out[i] = quantize(values[i], fmt);
  return out;
}

}  // namespace psdacc::fxp
