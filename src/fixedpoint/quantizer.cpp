#include "fixedpoint/quantizer.hpp"

// The span overload routes through dsp::kernels so the wavelet and
// frequency-domain paths get the vectorized quantizer. This is a .cpp-only
// dependency from fixedpoint up into dsp; the headers keep the usual
// dsp-on-fixedpoint direction.
#include "dsp/kernels.hpp"

namespace psdacc::fxp {

double quantize(double value, const FixedPointFormat& fmt) {
  return QuantizerKernel(fmt)(value);
}

std::vector<double> quantize(std::span<const double> values,
                             const FixedPointFormat& fmt) {
  const QuantizerKernel kernel(fmt);
  std::vector<double> out(values.size());
  dsp::kernels::quantize_span(kernel, values, out);
  return out;
}

}  // namespace psdacc::fxp
