#include "fixedpoint/quantizer.hpp"

#include "support/assert.hpp"

namespace psdacc::fxp {

double quantize(double value, const FixedPointFormat& fmt) {
  return QuantizerKernel(fmt)(value);
}

std::vector<double> quantize(std::span<const double> values,
                             const FixedPointFormat& fmt) {
  const QuantizerKernel kernel(fmt);
  std::vector<double> out(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) out[i] = kernel(values[i]);
  return out;
}

}  // namespace psdacc::fxp
