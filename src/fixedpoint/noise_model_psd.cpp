#include "fixedpoint/noise_model_psd.hpp"

#include "support/assert.hpp"

namespace psdacc::fxp {

std::vector<double> white_noise_psd(const NoiseMoments& moments,
                                    std::size_t n_bins) {
  PSDACC_EXPECTS(n_bins >= 2);
  std::vector<double> psd(n_bins,
                          moments.variance /
                              static_cast<double>(n_bins - 1));
  psd[0] = moments.mean * moments.mean;
  return psd;
}

}  // namespace psdacc::fxp
