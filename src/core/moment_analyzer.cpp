#include "core/moment_analyzer.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace psdacc::core {

MomentAnalyzer::MomentAnalyzer(const sfg::Graph& g, MomentOptions opts)
    : graph_(g), opts_(opts) {
  const std::size_t impulse_len = opts_.impulse_len;
  PSDACC_EXPECTS(!g.has_cycles());
  g.validate();
  order_ = g.topological_order();
  topo_pos_.resize(g.node_count());
  for (std::size_t pos = 0; pos < order_.size(); ++pos)
    topo_pos_[order_[pos]] = pos;
  topology_at_build_ = g.topology_revision();
  delta_supported_ = true;
  if (!opts_.blind_multirate) {
    for (sfg::NodeId id = 0; id < g.node_count(); ++id)
      if (std::holds_alternative<sfg::UpsampleNode>(g.node(id).payload))
        delta_supported_ = false;  // see supports_delta() for why
  }
  gains_.resize(g.node_count());
  for (sfg::NodeId id = 0; id < g.node_count(); ++id) {
    const auto* block = std::get_if<sfg::BlockNode>(&g.node(id).payload);
    if (block == nullptr) continue;
    BlockGains bg;
    bg.signal_power_gain = block->tf.power_gain(impulse_len);
    bg.signal_dc = block->tf.dc_gain();
    if (block->output_format.has_value() && !block->tf.is_fir()) {
      const filt::TransferFunction ntf(std::vector<double>{1.0},
                                       block->tf.denominator());
      bg.noise_power_gain = ntf.power_gain(impulse_len);
      bg.noise_dc = ntf.dc_gain();
    }
    gains_[id] = bg;
  }
}

std::vector<fxp::NoiseMoments> MomentAnalyzer::evaluate() const {
  std::vector<fxp::NoiseMoments> moments;
  evaluate_into(moments);
  return moments;
}

void MomentAnalyzer::evaluate_into(
    std::vector<fxp::NoiseMoments>& moments) const {
  moments.assign(graph_.node_count(), fxp::NoiseMoments{});
  if (&moments == &workspace_) workspace_dirty_all_ = true;
  for (sfg::NodeId id : order_) {
    const sfg::NodeView node = graph_.node(id);
    fxp::NoiseMoments& out = moments[id];
    struct Visitor {
      const MomentAnalyzer& self;
      sfg::NodeView node;
      sfg::NodeId id;
      std::vector<fxp::NoiseMoments>& moments;
      fxp::NoiseMoments& out;

      const fxp::NoiseMoments& in(std::size_t port = 0) const {
        return moments[node.inputs[port]];
      }

      void operator()(const sfg::InputNode&) const {}
      void operator()(const sfg::OutputNode&) const { out = in(); }
      void operator()(const sfg::BlockNode& block) const {
        const auto& bg = self.gains_[id];
        // Blind propagation: variance times power gain (white assumption).
        out.variance = in().variance * bg.signal_power_gain;
        out.mean = in().mean * bg.signal_dc;
        if (block.output_format.has_value()) {
          const auto own =
              fxp::continuous_quantization_noise(*block.output_format);
          out.variance += own.variance * bg.noise_power_gain;
          out.mean += own.mean * bg.noise_dc;
        }
      }
      void operator()(const sfg::GainNode& gain) const {
        out.variance = in().variance * gain.gain * gain.gain;
        out.mean = in().mean * gain.gain;
      }
      void operator()(const sfg::DelayNode&) const { out = in(); }
      void operator()(const sfg::AdderNode& adder) const {
        out = fxp::NoiseMoments{};
        for (std::size_t p = 0; p < node.inputs.size(); ++p) {
          out.variance += in(p).variance;
          out.mean += adder.signs[p] * in(p).mean;
        }
      }
      void operator()(const sfg::DownsampleNode&) const {
        out = in();  // decimation preserves marginal statistics
      }
      void operator()(const sfg::UpsampleNode& u) const {
        if (self.opts_.blind_multirate) {
          // The paper's baseline: moments pass through unchanged. This is
          // what makes the agnostic DWT estimate overshoot by ~2x per
          // zero-insertion (Table II's 610%).
          out = in();
          return;
        }
        // Corrected: zero insertion gives E[y^2] = E[x^2]/L, E[y] = E[x]/L.
        const double l = static_cast<double>(u.factor);
        const double in_power = in().mean * in().mean + in().variance;
        out.mean = in().mean / l;
        out.variance = in_power / l - out.mean * out.mean;
      }
      void operator()(const sfg::QuantizerNode& q) const {
        out.variance = in().variance + q.moments.variance;
        out.mean = in().mean + q.moments.mean;
      }
    };
    std::visit(Visitor{*this, node, id, moments, out}, node.payload);
  }
}

double MomentAnalyzer::output_noise_power() const {
  const auto& outputs = graph_.outputs();
  PSDACC_EXPECTS(outputs.size() == 1);
  evaluate_into(workspace_);
  return workspace_[outputs[0]].power();
}

// Unit-injection sweep along the signal path only (no other source
// injects), restricted to the downstream cone; the moment analog of
// PsdAnalyzer::unit_response. Blocks pre-shape the injection by their
// noise gains, exactly as evaluate_into injects own noise. Only cone
// members are swept (in topological order), only entries the previous
// sweep touched are re-zeroed, and out-of-cone adder operands read a
// zero constant — O(|cone|) work, not O(|graph|).
UnitResponse MomentAnalyzer::unit_response(sfg::NodeId source) const {
  const sfg::ConeView cone = graph_.downstream_cone(source);

  if (workspace_.size() != graph_.node_count()) {
    workspace_.assign(graph_.node_count(), fxp::NoiseMoments{});
    workspace_dirty_all_ = false;
  } else if (workspace_dirty_all_) {
    workspace_.assign(graph_.node_count(), fxp::NoiseMoments{});
    workspace_dirty_all_ = false;
  } else {
    for (sfg::NodeId id : unit_touched_) workspace_[id] = fxp::NoiseMoments{};
  }
  unit_touched_.assign(cone.begin(), cone.end());
  std::sort(unit_touched_.begin(), unit_touched_.end(),
            [this](sfg::NodeId a, sfg::NodeId b) {
              return topo_pos_[a] < topo_pos_[b];
            });

  fxp::NoiseMoments& injected = workspace_[source];
  injected = fxp::NoiseMoments{1.0, 1.0};
  if (std::holds_alternative<sfg::BlockNode>(graph_.node(source).payload)) {
    const auto& bg = gains_[source];
    injected.variance *= bg.noise_power_gain;
    injected.mean *= bg.noise_dc;
  }

  for (sfg::NodeId id : unit_touched_) {
    if (id == source) continue;
    const sfg::NodeView node = graph_.node(id);
    fxp::NoiseMoments& out = workspace_[id];
    struct Visitor {
      const MomentAnalyzer& self;
      const sfg::ConeView& cone;
      sfg::NodeView node;
      sfg::NodeId id;
      fxp::NoiseMoments& out;

      const fxp::NoiseMoments& in(std::size_t port = 0) const {
        static constexpr fxp::NoiseMoments kZero{};
        const sfg::NodeId src = node.inputs[port];
        return cone.contains(src) ? self.workspace_[src] : kZero;
      }

      void operator()(const sfg::InputNode&) const {}
      void operator()(const sfg::OutputNode&) const { out = in(); }
      void operator()(const sfg::BlockNode&) const {
        const auto& bg = self.gains_[id];
        out.variance = in().variance * bg.signal_power_gain;
        out.mean = in().mean * bg.signal_dc;
      }
      void operator()(const sfg::GainNode& gain) const {
        out.variance = in().variance * gain.gain * gain.gain;
        out.mean = in().mean * gain.gain;
      }
      void operator()(const sfg::DelayNode&) const { out = in(); }
      void operator()(const sfg::AdderNode& adder) const {
        out = fxp::NoiseMoments{};
        for (std::size_t p = 0; p < node.inputs.size(); ++p) {
          out.variance += in(p).variance;
          out.mean += adder.signs[p] * in(p).mean;
        }
      }
      void operator()(const sfg::DownsampleNode&) const { out = in(); }
      void operator()(const sfg::UpsampleNode&) const {
        // Only reachable under blind rules (see supports_delta()), where
        // the expander is transparent.
        PSDACC_EXPECTS(self.opts_.blind_multirate);
        out = in();
      }
      void operator()(const sfg::QuantizerNode&) const { out = in(); }
    };
    std::visit(Visitor{*this, cone, node, id, out}, node.payload);
  }

  const auto& outputs = graph_.outputs();
  PSDACC_EXPECTS(outputs.size() == 1);
  // A source that never reaches the output leaves an all-zero response.
  const sfg::NodeId out_id = outputs[0];
  if (!cone.contains(out_id)) return UnitResponse{};
  return UnitResponse{.power = workspace_[out_id].variance,
                      .dc = workspace_[out_id].mean};
}

double MomentAnalyzer::output_noise_power_delta(
    sfg::NodeId v, const fxp::FixedPointFormat& format) const {
  PSDACC_EXPECTS(delta_supported_);
  return delta_terms_.power_delta(
      graph_, topology_at_build_, v, format,
      [this](sfg::NodeId source) { return unit_response(source); });
}

}  // namespace psdacc::core
