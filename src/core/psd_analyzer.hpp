/// @file psd_analyzer.hpp
/// The proposed method (Section III of the paper): hierarchical propagation
/// of quantization-noise PSDs through an acyclic SFG.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/delta_terms.hpp"
#include "core/noise_spectrum.hpp"
#include "sfg/graph.hpp"

namespace psdacc::core {

/// Tuning knobs for PsdAnalyzer.
struct PsdOptions {
  /// Number of PSD bins (the paper's N_PSD); accuracy/cost trade-off.
  std::size_t n_psd = 1024;
  /// Interpolation for fractional bin indices in the multirate fold.
  NoiseSpectrum::Interp interp = NoiseSpectrum::Interp::kLinear;
};

/// Hierarchical PSD accuracy engine.
///
/// Split into the two stages the paper times separately:
///  * construction ("preprocessing", tau_pp): samples every block's
///    magnitude-squared response and noise transfer function on the N_PSD
///    grid — O(N) per block coefficient, one-time;
///  * evaluate() ("evaluation", tau_eval): one topological sweep applying
///    Eqs. 10, 11 and 14 plus the multirate rules — O(N) per node, repeated
///    for every word-length assignment being explored.
///
/// Thread-safety contract: one analyzer instance carries mutable probe
/// scratch and must be driven from one thread at a time, but distinct
/// analyzers over distinct graphs are fully independent — the parallel
/// runtime (runtime::ThreadPool workloads, the optimizer's concurrent
/// probes) gives every worker its own graph clone + analyzer.
class PsdAnalyzer {
 public:
  /// Preprocesses the graph (must be acyclic; run sfg::collapse_loops
  /// first).
  /// @param g    the system; must outlive the analyzer. Quantizer moments
  ///             may change between evaluate() calls but the topology and
  ///             block coefficients must not.
  /// @param opts PSD resolution and interpolation settings
  PsdAnalyzer(const sfg::Graph& g, PsdOptions opts = {});

  /// Propagates noise spectra input -> outputs.
  /// @return one spectrum per node, indexed by NodeId
  std::vector<NoiseSpectrum> evaluate() const;

  /// Propagates into @p spectra, reusing its storage (resized/reset as
  /// needed). This is the allocation-free form the optimizer probes use.
  void evaluate_into(std::vector<NoiseSpectrum>& spectra) const;

  /// Convenience: spectrum at the single Output node (asserts exactly one).
  /// Evaluates into an internal workspace, so repeated probes allocate
  /// nothing after the first call.
  NoiseSpectrum output_spectrum() const;
  /// Convenience: total noise power at the single Output node.
  double output_noise_power() const;

  /// True when incremental (per-source decomposed) evaluation is exact for
  /// this graph. Hierarchical PSD propagation is linear in each source's
  /// (variance, mean) *except* through zero-stuffing expanders, whose
  /// folded image lines carry (mean/L)^2 of the *total* mean at the
  /// expander (NoiseSpectrum::expand) — quadratic, so per-source terms no
  /// longer add. Graphs with upsamplers therefore honestly report
  /// unsupported; downsamplers (linear PSD fold) are fine.
  bool supports_delta() const { return delta_supported_; }

  /// Incremental probe: total output noise power as if source @p v
  /// injected the continuous-PQN moments of @p format (the same moments a
  /// word-length assignment would install), every other node unchanged.
  /// The graph is not mutated. Exact up to floating-point reordering
  /// against mutate-then-output_noise_power().
  ///
  /// Cost: O(1) scalar work per call past the first (O(sources) for small
  /// graphs), after a lazily built per-source unit response — one sweep
  /// restricted to sfg::Graph::downstream_cone(v), touching O(|cone|)
  /// spectra rather than O(|graph|), cached until a propagation-affecting
  /// mutation (see core::SourceTermCache for the invalidation rules).
  /// Cached contributions re-derive only for sources whose node revision
  /// moved since the last call. Requires supports_delta().
  double output_noise_power_delta(sfg::NodeId v,
                                  const fxp::FixedPointFormat& format) const;

  const PsdOptions& options() const { return opts_; }

 private:
  struct BlockTables {
    std::vector<double> signal_power;  // |B/A|^2 on the grid
    double signal_dc = 1.0;
    std::vector<double> noise_power;  // |1/A|^2 on the grid (if quantized)
    double noise_dc = 1.0;
  };

  UnitResponse unit_response(sfg::NodeId source) const;

  const sfg::Graph& graph_;
  PsdOptions opts_;
  std::vector<sfg::NodeId> order_;
  std::vector<std::size_t> topo_pos_;  // NodeId -> position in order_
  std::vector<BlockTables> tables_;  // indexed by NodeId (empty for most)
  bool delta_supported_ = false;
  std::uint64_t topology_at_build_ = 0;
  // Reused by output_spectrum()/output_noise_power() and the block visitor
  // so per-probe evaluation is allocation-free (hence one analyzer may not
  // be shared across threads; clone the graph and build one per worker).
  mutable std::vector<NoiseSpectrum> workspace_;
  mutable NoiseSpectrum scratch_;
  // Cone-restricted unit sweeps zero only what the previous sweep touched;
  // a full evaluate_into in between soils everything and sets the flag.
  mutable std::vector<sfg::NodeId> unit_touched_;
  mutable bool workspace_dirty_all_ = true;
  // Shared all-zero spectrum standing in for out-of-cone adder operands.
  NoiseSpectrum zero_;
  // Decomposed per-source delta-probe cache (lazy scratch, same
  // one-thread-at-a-time contract as the workspaces).
  mutable SourceTermCache delta_terms_;
};

}  // namespace psdacc::core
