#include "core/range_analysis.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "support/assert.hpp"

namespace psdacc::core {
namespace {
std::atomic<std::size_t> range_calls{0};
}  // namespace

std::size_t analyze_ranges_calls() {
  return range_calls.load(std::memory_order_relaxed);
}

double Range::max_abs() const { return std::max(std::abs(lo), std::abs(hi)); }

double l1_norm(const filt::TransferFunction& tf, std::size_t impulse_len) {
  const std::size_t len = tf.is_fir() ? tf.numerator().size() : impulse_len;
  double acc = 0.0;
  for (double v : tf.impulse_response(len)) acc += std::abs(v);
  return acc;
}

namespace {

Range through_block(const Range& in, const filt::TransferFunction& tf,
                    std::size_t impulse_len) {
  // Split the input into its midpoint (a DC signal, mapped exactly through
  // H(1)) and a residual of half-width w (worst-cased via the L1 norm).
  const double c_out = in.center() * tf.dc_gain();
  const double w_out = in.half_width() * l1_norm(tf, impulse_len);
  return Range{c_out - w_out, c_out + w_out};
}

Range hull(const Range& a, double v) {
  return Range{std::min(a.lo, v), std::max(a.hi, v)};
}

}  // namespace

std::vector<Range> analyze_ranges(const sfg::Graph& g, Range input,
                                  RangeOptions opts) {
  range_calls.fetch_add(1, std::memory_order_relaxed);
  PSDACC_EXPECTS(input.lo <= input.hi);
  PSDACC_EXPECTS(!g.has_cycles());
  g.validate();
  std::vector<Range> ranges(g.node_count());
  for (sfg::NodeId id : g.topological_order()) {
    const sfg::NodeView node = g.node(id);
    Range& out = ranges[id];
    struct Visitor {
      const sfg::Graph& g;
      sfg::NodeView node;
      const Range& input;
      const RangeOptions& opts;
      std::vector<Range>& ranges;
      Range& out;

      const Range& in(std::size_t port = 0) const {
        return ranges[node.inputs[port]];
      }

      void operator()(const sfg::InputNode&) const { out = input; }
      void operator()(const sfg::OutputNode&) const { out = in(); }
      void operator()(const sfg::BlockNode& block) const {
        out = through_block(in(), block.tf, opts.impulse_len);
        if (block.output_format.has_value()) {
          // Quantization can move a value by half a step (round) or a full
          // step (truncate), and saturation clamps to the format range.
          const double q = block.output_format->step();
          out.lo = std::max(out.lo - q, block.output_format->min_value());
          out.hi = std::min(out.hi + q, block.output_format->max_value());
          if (out.lo > out.hi) std::swap(out.lo, out.hi);
        }
      }
      void operator()(const sfg::GainNode& gain) const {
        const double a = in().lo * gain.gain;
        const double b = in().hi * gain.gain;
        out = Range{std::min(a, b), std::max(a, b)};
      }
      void operator()(const sfg::DelayNode&) const {
        out = hull(in(), 0.0);  // zero initial state is observable
      }
      void operator()(const sfg::AdderNode& adder) const {
        out = Range{0.0, 0.0};
        for (std::size_t p = 0; p < node.inputs.size(); ++p) {
          const double s = adder.signs[p];
          const double a = s * in(p).lo;
          const double b = s * in(p).hi;
          out.lo += std::min(a, b);
          out.hi += std::max(a, b);
        }
      }
      void operator()(const sfg::DownsampleNode&) const { out = in(); }
      void operator()(const sfg::UpsampleNode&) const {
        out = hull(in(), 0.0);  // inserted zeros
      }
      void operator()(const sfg::QuantizerNode& q) const {
        const double step = q.format.step();
        out.lo = std::max(in().lo - step, q.format.min_value());
        out.hi = std::min(in().hi + step, q.format.max_value());
        if (out.lo > out.hi) std::swap(out.lo, out.hi);
      }
    };
    std::visit(Visitor{g, node, input, opts, ranges, out}, node.payload);
  }
  return ranges;
}

int required_integer_bits(const Range& r) {
  PSDACC_EXPECTS(r.lo <= r.hi);
  // Signed range [-2^(i-1), 2^(i-1)): find the smallest i covering r.
  for (int i = 1; i <= 62; ++i) {
    const double mag = std::ldexp(1.0, i - 1);
    if (r.lo >= -mag && r.hi < mag) return i;
  }
  return 63;
}

}  // namespace psdacc::core
