// Flat analytical method (Menard et al. [8], Eq. 4 of the paper):
// propagates the *complex* frequency response from every noise source to
// the output, so reconvergent paths of the same source add coherently.
//
// Exact for single-rate LTI systems (it is the frequency-domain form of the
// K_i / L_ij path constants), but costs O(sources x nodes x N) per
// evaluation — the scalability wall that motivates the hierarchical PSD
// method. Restricted to single-rate graphs (decimation is not LTI).
#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/delta_terms.hpp"
#include "core/noise_spectrum.hpp"
#include "sfg/graph.hpp"

namespace psdacc::core {

class FlatAnalyzer {
 public:
  FlatAnalyzer(const sfg::Graph& g, std::size_t n_psd = 1024);

  /// Output noise spectrum with per-source coherent path accumulation.
  NoiseSpectrum output_spectrum() const;
  double output_noise_power() const;

  /// Complex source-to-output response on the N-grid for one noise source
  /// (by NodeId); exposed for tests and the reconvergence ablation.
  std::vector<std::complex<double>> source_response(sfg::NodeId source) const;

  /// The flat method is per-source by construction, and its responses
  /// depend only on topology and coefficients — the decomposition is
  /// always exact (the analyzer is single-rate to begin with).
  bool supports_delta() const { return true; }

  /// Incremental probe, mirroring PsdAnalyzer::output_noise_power_delta:
  /// output power as if source @p v injected the continuous-PQN moments of
  /// @p format, all else unchanged; graph not mutated. O(sources) per call
  /// after the lazily cached per-source response norms — which also turns
  /// the flat method's O(sources x nodes x N) per-evaluation wall into a
  /// one-time preprocessing cost on the delta path.
  double output_noise_power_delta(sfg::NodeId v,
                                  const fxp::FixedPointFormat& format) const;

 private:
  UnitResponse unit_response(sfg::NodeId source) const;
  /// Cone-restricted sweep into the persistent response workspace; returns
  /// the output node's row (a shared zero row when the source never
  /// reaches the output).
  const std::vector<std::complex<double>>& sweep_response(
      sfg::NodeId source) const;

  const sfg::Graph& graph_;
  std::size_t n_psd_;
  std::vector<sfg::NodeId> order_;
  std::vector<std::size_t> topo_pos_;  // NodeId -> position in order_
  sfg::NodeId output_;
  std::uint64_t topology_at_build_ = 0;
  std::vector<std::complex<double>> zero_row_;  // out-of-cone stand-in
  // Persistent per-node response workspace: sweeps touch only the cone of
  // the probed source and re-zero only what the previous sweep touched.
  mutable std::vector<std::vector<std::complex<double>>> resp_ws_;
  mutable std::vector<sfg::NodeId> resp_touched_;
  // Preprocessing cache: complex response grids of Block nodes (and their
  // noise transfer functions), computed once instead of per source.
  std::vector<std::vector<std::complex<double>>> block_grids_;
  std::vector<std::vector<std::complex<double>>> ntf_grids_;
  // Delta-probe cache (see PsdAnalyzer): per-source scalar reductions of
  // source_response(), lazily built. Mutable lazy state under the same
  // one-thread-at-a-time contract as the other analyzers' workspaces.
  mutable SourceTermCache delta_terms_;
};

}  // namespace psdacc::core
