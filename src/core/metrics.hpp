// Accuracy metrics from the paper's Section IV.
#pragma once

#include "support/assert.hpp"

namespace psdacc::core {

/// Eq. 15: relative deviation of the estimated error power from the
/// simulated one: E_d = (P_sim - P_est) / P_sim.
inline double mse_deviation(double simulated_power, double estimated_power) {
  PSDACC_EXPECTS(simulated_power > 0.0);
  return (simulated_power - estimated_power) / simulated_power;
}

/// The paper's "one-bit equivalent" acceptance band: an estimate within one
/// bit of the true word-length corresponds to E_d in (-75%, +300%) (error
/// power quadruples per dropped bit).
inline bool within_one_bit(double e_d) { return e_d > -0.75 && e_d < 3.0; }

}  // namespace psdacc::core
