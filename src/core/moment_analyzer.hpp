// PSD-agnostic hierarchical baseline ([4], [9] in the paper): propagates
// only the first two moments (mu, sigma^2) of each noise through the SFG.
//
// A block with memory scales the variance by its *power gain* sum_k h[k]^2,
// which silently assumes the incoming noise is white — exactly the
// assumption the proposed method removes. Everything else (adders, gains,
// multirate, noise injection) matches the PSD engine so that the comparison
// in Table II isolates the spectral information alone.
#pragma once

#include <cstdint>
#include <vector>

#include "core/delta_terms.hpp"
#include "fixedpoint/noise_model.hpp"
#include "sfg/graph.hpp"

namespace psdacc::core {

struct MomentOptions {
  /// true (default, the paper's baseline of Fig. 1.b): up/downsamplers are
  /// transparent to the propagated (mu, sigma^2) — "blind propagation".
  /// false: apply the exact marginal-statistics corrections (zero
  /// insertion scales E[y^2] by 1/L). The gap between the two is ablation
  /// A3 in DESIGN.md.
  bool blind_multirate = true;
  /// Impulse-response truncation length for IIR power gains.
  std::size_t impulse_len = 8192;
};

/// Thread-safety contract: one analyzer instance carries mutable probe
/// scratch (the output_noise_power workspace) and must be driven from one
/// thread at a time; distinct analyzers over distinct graphs are fully
/// independent (clone the graph and build one per worker).
class MomentAnalyzer {
 public:
  /// Preprocesses block power gains. Graph must be acyclic and outlive the
  /// analyzer.
  explicit MomentAnalyzer(const sfg::Graph& g, MomentOptions opts = {});

  /// Per-node noise moments after one topological sweep.
  std::vector<fxp::NoiseMoments> evaluate() const;

  /// Propagates into @p moments, reusing its storage. This is the
  /// allocation-free form optimizer probes use (parity with
  /// PsdAnalyzer::evaluate_into).
  void evaluate_into(std::vector<fxp::NoiseMoments>& moments) const;

  /// Total estimated noise power at the single Output node. Evaluates into
  /// an internal workspace, so repeated probes allocate nothing after the
  /// first call.
  double output_noise_power() const;

  /// True when incremental (per-source decomposed) evaluation is exact.
  /// Blind (mu, sigma^2) propagation is linear per source; the *corrected*
  /// upsample rule (blind_multirate == false) derives the output variance
  /// from the total second moment E[x^2]/L - E[y]^2, which is quadratic in
  /// the total mean at the expander, so per-source terms no longer add.
  /// Graphs with upsamplers under corrected rules honestly report
  /// unsupported.
  bool supports_delta() const { return delta_supported_; }

  /// Incremental probe, mirroring PsdAnalyzer::output_noise_power_delta:
  /// output power as if source @p v injected the continuous-PQN moments of
  /// @p format, all else unchanged; graph not mutated. O(1) per call past
  /// the first (O(sources) for small graphs) after lazily built per-source
  /// unit gains (one O(|cone|) downstream-cone sweep each). Requires
  /// supports_delta().
  double output_noise_power_delta(sfg::NodeId v,
                                  const fxp::FixedPointFormat& format) const;

 private:
  struct BlockGains {
    double signal_power_gain = 1.0;
    double signal_dc = 1.0;
    double noise_power_gain = 1.0;
    double noise_dc = 1.0;
  };

  UnitResponse unit_response(sfg::NodeId source) const;

  const sfg::Graph& graph_;
  MomentOptions opts_;
  std::vector<sfg::NodeId> order_;
  std::vector<std::size_t> topo_pos_;  // NodeId -> position in order_
  std::vector<BlockGains> gains_;
  bool delta_supported_ = false;
  std::uint64_t topology_at_build_ = 0;
  // Reused by output_noise_power() so per-probe evaluation is
  // allocation-free (hence the one-thread-at-a-time contract above).
  mutable std::vector<fxp::NoiseMoments> workspace_;
  // Cone-restricted unit sweeps zero only what the previous sweep touched;
  // a full evaluate_into in between soils everything and sets the flag.
  mutable std::vector<sfg::NodeId> unit_touched_;
  mutable bool workspace_dirty_all_ = true;
  // Decomposed per-source delta-probe cache (lazy scratch, same
  // one-thread-at-a-time contract as the workspace).
  mutable SourceTermCache delta_terms_;
};

}  // namespace psdacc::core
