// PSD-agnostic hierarchical baseline ([4], [9] in the paper): propagates
// only the first two moments (mu, sigma^2) of each noise through the SFG.
//
// A block with memory scales the variance by its *power gain* sum_k h[k]^2,
// which silently assumes the incoming noise is white — exactly the
// assumption the proposed method removes. Everything else (adders, gains,
// multirate, noise injection) matches the PSD engine so that the comparison
// in Table II isolates the spectral information alone.
#pragma once

#include <vector>

#include "fixedpoint/noise_model.hpp"
#include "sfg/graph.hpp"

namespace psdacc::core {

struct MomentOptions {
  /// true (default, the paper's baseline of Fig. 1.b): up/downsamplers are
  /// transparent to the propagated (mu, sigma^2) — "blind propagation".
  /// false: apply the exact marginal-statistics corrections (zero
  /// insertion scales E[y^2] by 1/L). The gap between the two is ablation
  /// A3 in DESIGN.md.
  bool blind_multirate = true;
  /// Impulse-response truncation length for IIR power gains.
  std::size_t impulse_len = 8192;
};

/// Thread-safety contract: one analyzer instance carries mutable probe
/// scratch (the output_noise_power workspace) and must be driven from one
/// thread at a time; distinct analyzers over distinct graphs are fully
/// independent (clone the graph and build one per worker).
class MomentAnalyzer {
 public:
  /// Preprocesses block power gains. Graph must be acyclic and outlive the
  /// analyzer.
  explicit MomentAnalyzer(const sfg::Graph& g, MomentOptions opts = {});

  /// Per-node noise moments after one topological sweep.
  std::vector<fxp::NoiseMoments> evaluate() const;

  /// Propagates into @p moments, reusing its storage. This is the
  /// allocation-free form optimizer probes use (parity with
  /// PsdAnalyzer::evaluate_into).
  void evaluate_into(std::vector<fxp::NoiseMoments>& moments) const;

  /// Total estimated noise power at the single Output node. Evaluates into
  /// an internal workspace, so repeated probes allocate nothing after the
  /// first call.
  double output_noise_power() const;

 private:
  struct BlockGains {
    double signal_power_gain = 1.0;
    double signal_dc = 1.0;
    double noise_power_gain = 1.0;
    double noise_dc = 1.0;
  };

  const sfg::Graph& graph_;
  MomentOptions opts_;
  std::vector<sfg::NodeId> order_;
  std::vector<BlockGains> gains_;
  // Reused by output_noise_power() so per-probe evaluation is
  // allocation-free (hence the one-thread-at-a-time contract above).
  mutable std::vector<fxp::NoiseMoments> workspace_;
};

}  // namespace psdacc::core
