// PSD-agnostic hierarchical baseline ([4], [9] in the paper): propagates
// only the first two moments (mu, sigma^2) of each noise through the SFG.
//
// A block with memory scales the variance by its *power gain* sum_k h[k]^2,
// which silently assumes the incoming noise is white — exactly the
// assumption the proposed method removes. Everything else (adders, gains,
// multirate, noise injection) matches the PSD engine so that the comparison
// in Table II isolates the spectral information alone.
#pragma once

#include <vector>

#include "fixedpoint/noise_model.hpp"
#include "sfg/graph.hpp"

namespace psdacc::core {

struct MomentOptions {
  /// true (default, the paper's baseline of Fig. 1.b): up/downsamplers are
  /// transparent to the propagated (mu, sigma^2) — "blind propagation".
  /// false: apply the exact marginal-statistics corrections (zero
  /// insertion scales E[y^2] by 1/L). The gap between the two is ablation
  /// A3 in DESIGN.md.
  bool blind_multirate = true;
  /// Impulse-response truncation length for IIR power gains.
  std::size_t impulse_len = 8192;
};

class MomentAnalyzer {
 public:
  /// Preprocesses block power gains. Graph must be acyclic and outlive the
  /// analyzer.
  explicit MomentAnalyzer(const sfg::Graph& g, MomentOptions opts = {});

  /// Per-node noise moments after one topological sweep.
  std::vector<fxp::NoiseMoments> evaluate() const;

  /// Total estimated noise power at the single Output node.
  double output_noise_power() const;

 private:
  struct BlockGains {
    double signal_power_gain = 1.0;
    double signal_dc = 1.0;
    double noise_power_gain = 1.0;
    double noise_dc = 1.0;
  };

  const sfg::Graph& graph_;
  MomentOptions opts_;
  std::vector<sfg::NodeId> order_;
  std::vector<BlockGains> gains_;
};

}  // namespace psdacc::core
