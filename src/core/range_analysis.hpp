// Dynamic-range analysis for integer-bit selection — the complement to
// fractional-bit (precision) analysis that Section I of the paper points
// to. Two classical bounds are propagated through the SFG:
//
//  * interval arithmetic for memoryless nodes, and
//  * the L1 norm of the impulse response for LTI blocks:
//    y in c * H(1) +/- w * sum_k |h[k]| for inputs centered at c with
//    half-width w (the exact worst case for LTI systems).
//
// The resulting per-node ranges feed required_integer_bits(), closing the
// loop on full fixed-point format selection.
#pragma once

#include <cstddef>
#include <vector>

#include "fixedpoint/format.hpp"
#include "sfg/graph.hpp"

namespace psdacc::core {

struct Range {
  double lo = 0.0;
  double hi = 0.0;

  double center() const { return (lo + hi) / 2.0; }
  double half_width() const { return (hi - lo) / 2.0; }
  double max_abs() const;
  bool contains(double v) const { return v >= lo && v <= hi; }
};

struct RangeOptions {
  /// Impulse-response truncation for IIR L1 norms.
  std::size_t impulse_len = 8192;
};

/// Propagates the input range through every node; returns one Range per
/// NodeId. Graph must be acyclic and single-input (the one Input node gets
/// `input`).
std::vector<Range> analyze_ranges(const sfg::Graph& g, Range input,
                                  RangeOptions opts = {});

/// Smallest signed integer-bit count (including the sign bit) whose
/// representable range [-2^(i-1), 2^(i-1)) covers `r`.
int required_integer_bits(const Range& r);

/// L1 norm of a transfer function's impulse response (truncated for IIR).
double l1_norm(const filt::TransferFunction& tf, std::size_t impulse_len);

/// Process-wide count of analyze_ranges() invocations (monotonic,
/// thread-safe) — the probe-counter hook regression tests use to assert
/// the analysis is hoisted, not re-run, by drivers that cache it behind
/// the graph's topology revision (opt::WordlengthOptimizer).
std::size_t analyze_ranges_calls();

}  // namespace psdacc::core
