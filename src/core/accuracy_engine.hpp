/// @file accuracy_engine.hpp
/// The unified accuracy-evaluation interface — one polymorphic contract
/// over every method the paper compares: the flat spectral method (Menard
/// et al. [8], Eq. 4), the PSD-agnostic moment baseline ([4], [9]), the
/// proposed hierarchical PSD method (Section III), and bit-true Monte-Carlo
/// simulation (the ground truth).
///
/// The interface captures the paper's two-phase cost contract:
///  * construction ("preprocessing", tau_pp) — everything that depends only
///    on topology and block coefficients is computed once by
///    `make_engine()`;
///  * `output_noise_power()` ("evaluation", tau_eval) — cheap and
///    repeatable; re-reads the graph's current quantizer/block formats, so
///    drivers may mutate word-lengths between calls without rebuilding.
///
/// Thread-safety contract: one engine instance carries mutable evaluation
/// scratch and must be driven from one thread at a time. Parallel drivers
/// (the optimizer's concurrent probes, runtime::BatchRunner workers) give
/// every worker its own graph clone plus `clone_for_worker()` engine — the
/// per-worker-clone pattern the parallel runtime established.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>

#include "core/noise_spectrum.hpp"
#include "fixedpoint/format.hpp"
#include "sfg/graph.hpp"

namespace psdacc::runtime {
class ThreadPool;
}

namespace psdacc::core {

/// The four accuracy-evaluation methods the paper compares.
enum class EngineKind {
  kFlat,        ///< flat spectral method, Eq. 4 (exact, scales poorly)
  kMoment,      ///< PSD-agnostic hierarchical baseline (mu, sigma^2 only)
  kPsd,         ///< proposed hierarchical PSD propagation (Section III)
  kSimulation,  ///< bit-true Monte-Carlo simulation (ground truth)
};

/// All kinds, in the order reports list them (reference first).
inline constexpr std::array<EngineKind, 4> kAllEngineKinds = {
    EngineKind::kSimulation, EngineKind::kPsd, EngineKind::kMoment,
    EngineKind::kFlat};

/// Stable lowercase name ("flat", "moment", "psd", "simulation").
std::string_view to_string(EngineKind kind);

/// Inverse of to_string(); also accepts "sim". Empty optional on unknown
/// names — drivers turn that into their own usage error.
std::optional<EngineKind> parse_engine_kind(std::string_view name);

/// What an engine can honestly do. Drivers query this instead of
/// hard-coding per-method special cases.
struct EngineCapabilities {
  bool spectrum = false;   ///< output_spectrum() is supported
  bool multirate = false;  ///< accepts graphs with up/down-samplers
  bool stochastic = false; ///< estimate carries Monte-Carlo noise (seeded)
  /// evaluate_delta() is supported *on the bound graph*. Per-instance on
  /// purpose: the analytical engines decompose the output noise per
  /// source, which is exact only where propagation is linear in each
  /// source's (variance, mean) — upsamplers break it for the psd engine
  /// (and for the moment engine under corrected multirate rules), and the
  /// simulation engine has no decomposition at all. Drivers that find
  /// delta == false fall back to full evaluation.
  bool delta = false;
};

/// Union of every backend's tuning knobs; each engine reads only its own.
/// One options struct (rather than a per-kind variant) keeps sweep drivers
/// trivial: configure once, construct any kind.
struct EngineOptions {
  // flat + psd: spectral resolution (the paper's N_PSD).
  std::size_t n_psd = 1024;
  // psd: interpolation for fractional bin indices in the multirate fold.
  NoiseSpectrum::Interp interp = NoiseSpectrum::Interp::kLinear;
  // moment: blind vs corrected multirate rules, IIR power-gain truncation.
  bool blind_multirate = true;
  std::size_t impulse_len = 8192;
  // simulation: Monte-Carlo plan (see sim::measure_output_error_sharded;
  // shards > 1 splits the run into independent RNG substreams).
  std::size_t sim_samples = 1u << 20;
  std::size_t sim_shards = 1;
  std::size_t sim_discard = 1024;
  std::uint64_t sim_seed = 42;
  double sim_amplitude = 0.9;  ///< uniform input in [-a, a]
  /// Optional pool for concurrent simulation shards (not owned). The other
  /// engines are single-threaded by design; results never depend on this.
  runtime::ThreadPool* pool = nullptr;
};

/// Polymorphic accuracy engine over one (graph, options) binding.
class AccuracyEngine {
 public:
  /// Per-instance evaluation accounting — the probe-counter hook tests
  /// and drivers use to assert cache behavior (cache-warm repeated
  /// evaluation, delta probes actually taking the delta path).
  struct EvalCounters {
    std::size_t full = 0;    ///< full output_noise_power() recomputations
    std::size_t cached = 0;  ///< revision-cache hits (graph unchanged)
    std::size_t delta = 0;   ///< evaluate_delta() probes
  };

  virtual ~AccuracyEngine() = default;

  virtual EngineKind kind() const = 0;
  std::string_view name() const { return to_string(kind()); }
  virtual EngineCapabilities capabilities() const = 0;

  /// Total estimated (or measured) noise power at the single Output node
  /// for the graph's *current* word-length assignment. This is the tau_eval
  /// phase: cheap and repeatable for the analytical engines, a full
  /// Monte-Carlo run for the simulation engine. Every engine's evaluation
  /// is a pure function of the graph state, so results are memoized on
  /// sfg::Graph::revision(): re-evaluating an unchanged graph is a cache
  /// hit (eval_counters().cached) returning the identical bits.
  virtual double output_noise_power() = 0;

  /// Incremental probe: total output noise power as if noise source @p v
  /// carried the word-length format @p format (PQN moments re-derived from
  /// it, exactly as applying the assignment would), every other node
  /// unchanged. The graph is not mutated. Combines cached per-source
  /// noise contributions with one re-derived term, so a probe is
  /// O(sources) instead of O(graph) — the optimizer's inner loop lives on
  /// this. Exact up to floating-point reordering against
  /// apply-then-output_noise_power().
  /// @throws std::logic_error when !capabilities().delta (the simulation
  ///         engine always; psd/moment engines on graphs where the
  ///         per-source decomposition would be dishonest) — callers check
  ///         the capability and fall back to full evaluation.
  virtual double evaluate_delta(sfg::NodeId v,
                                const fxp::FixedPointFormat& format);

  const EvalCounters& eval_counters() const { return counters_; }

  /// Output noise spectrum at the engine's configured resolution.
  /// @throws std::logic_error when !capabilities().spectrum (moment engine).
  virtual NoiseSpectrum output_spectrum() = 0;

  /// A new engine of the same kind and options bound to @p g — a private
  /// clone of the driver's graph (NodeIds are indices, so ids remain
  /// valid). @p g must outlive the returned engine.
  virtual std::unique_ptr<AccuracyEngine> clone_for_worker(
      const sfg::Graph& g) const = 0;

 protected:
  EvalCounters counters_;
};

/// True when @p kind can evaluate @p g (today: the flat engine refuses
/// multirate graphs; everything else accepts any acyclic SFG).
bool engine_supports(EngineKind kind, const sfg::Graph& g);

/// Factory: preprocesses @p g (tau_pp) and returns the engine.
/// @param g    acyclic SFG with exactly one Output; must outlive the engine
/// @param opts per-backend knobs (each engine reads only its own)
/// @throws std::invalid_argument when engine_supports(kind, g) is false,
///         e.g. the flat engine on a multirate graph
std::unique_ptr<AccuracyEngine> make_engine(EngineKind kind,
                                            const sfg::Graph& g,
                                            const EngineOptions& opts = {});

}  // namespace psdacc::core
