#include "core/accuracy_engine.hpp"

#include <stdexcept>
#include <string>

#include "core/flat_analyzer.hpp"
#include "core/moment_analyzer.hpp"
#include "core/psd_analyzer.hpp"
#include "sim/error_measurement.hpp"
#include "support/random.hpp"

namespace psdacc::core {
namespace {

// Revision-keyed memo of the last full evaluation. Every engine's
// output_noise_power() is a deterministic function of the graph state
// (the simulation engine re-runs the same seeded plan), so a repeated
// evaluation on an unchanged graph — equal sfg::Graph::revision() — may
// return the memoized value bit for bit.
class PowerCache {
 public:
  explicit PowerCache(const sfg::Graph& g) : graph_(g) {}

  template <typename Recompute>
  double get(AccuracyEngine::EvalCounters& counters, Recompute&& recompute) {
    if (valid_ && revision_ == graph_.revision()) {
      ++counters.cached;
      return power_;
    }
    ++counters.full;
    power_ = recompute();
    revision_ = graph_.revision();
    valid_ = true;
    return power_;
  }

 private:
  const sfg::Graph& graph_;
  double power_ = 0.0;
  std::uint64_t revision_ = 0;
  bool valid_ = false;
};

// --- Analytical adapters ---------------------------------------------------
//
// Each adapter owns its analyzer (construction is the tau_pp phase) and
// forwards evaluation; options are kept so clone_for_worker() can rebuild
// an identical engine against a worker's graph clone.

class FlatEngine final : public AccuracyEngine {
 public:
  FlatEngine(const sfg::Graph& g, const EngineOptions& opts)
      : opts_(opts), cache_(g), analyzer_(g, opts.n_psd) {}

  EngineKind kind() const override { return EngineKind::kFlat; }
  EngineCapabilities capabilities() const override {
    return {.spectrum = true, .multirate = false, .stochastic = false,
            .delta = analyzer_.supports_delta()};
  }
  double output_noise_power() override {
    return cache_.get(counters_,
                      [&] { return analyzer_.output_noise_power(); });
  }
  double evaluate_delta(sfg::NodeId v,
                        const fxp::FixedPointFormat& format) override {
    ++counters_.delta;
    return analyzer_.output_noise_power_delta(v, format);
  }
  NoiseSpectrum output_spectrum() override {
    return analyzer_.output_spectrum();
  }
  std::unique_ptr<AccuracyEngine> clone_for_worker(
      const sfg::Graph& g) const override {
    return std::make_unique<FlatEngine>(g, opts_);
  }

 private:
  EngineOptions opts_;
  PowerCache cache_;
  FlatAnalyzer analyzer_;
};

class MomentEngine final : public AccuracyEngine {
 public:
  MomentEngine(const sfg::Graph& g, const EngineOptions& opts)
      : opts_(opts),
        cache_(g),
        analyzer_(g, {.blind_multirate = opts.blind_multirate,
                      .impulse_len = opts.impulse_len}) {}

  EngineKind kind() const override { return EngineKind::kMoment; }
  EngineCapabilities capabilities() const override {
    return {.spectrum = false, .multirate = true, .stochastic = false,
            .delta = analyzer_.supports_delta()};
  }
  double output_noise_power() override {
    return cache_.get(counters_,
                      [&] { return analyzer_.output_noise_power(); });
  }
  double evaluate_delta(sfg::NodeId v,
                        const fxp::FixedPointFormat& format) override {
    if (!analyzer_.supports_delta())
      return AccuracyEngine::evaluate_delta(v, format);  // throws
    ++counters_.delta;
    return analyzer_.output_noise_power_delta(v, format);
  }
  NoiseSpectrum output_spectrum() override {
    throw std::logic_error(
        "moment engine propagates (mu, sigma^2) only; it has no spectrum "
        "(capabilities().spectrum == false)");
  }
  std::unique_ptr<AccuracyEngine> clone_for_worker(
      const sfg::Graph& g) const override {
    return std::make_unique<MomentEngine>(g, opts_);
  }

 private:
  EngineOptions opts_;
  PowerCache cache_;
  MomentAnalyzer analyzer_;
};

class PsdEngine final : public AccuracyEngine {
 public:
  PsdEngine(const sfg::Graph& g, const EngineOptions& opts)
      : opts_(opts),
        cache_(g),
        analyzer_(g, {.n_psd = opts.n_psd, .interp = opts.interp}) {}

  EngineKind kind() const override { return EngineKind::kPsd; }
  EngineCapabilities capabilities() const override {
    return {.spectrum = true, .multirate = true, .stochastic = false,
            .delta = analyzer_.supports_delta()};
  }
  double output_noise_power() override {
    return cache_.get(counters_,
                      [&] { return analyzer_.output_noise_power(); });
  }
  double evaluate_delta(sfg::NodeId v,
                        const fxp::FixedPointFormat& format) override {
    if (!analyzer_.supports_delta())
      return AccuracyEngine::evaluate_delta(v, format);  // throws
    ++counters_.delta;
    return analyzer_.output_noise_power_delta(v, format);
  }
  NoiseSpectrum output_spectrum() override {
    return analyzer_.output_spectrum();
  }
  std::unique_ptr<AccuracyEngine> clone_for_worker(
      const sfg::Graph& g) const override {
    return std::make_unique<PsdEngine>(g, opts_);
  }

 private:
  EngineOptions opts_;
  PowerCache cache_;
  PsdAnalyzer analyzer_;
};

// --- Simulation adapter ----------------------------------------------------
//
// Adapts the Monte-Carlo measurement to the engine contract. There is no
// meaningful preprocessing (the execution plan is rebuilt per run because
// every evaluation re-reads the mutated formats anyway), so tau_pp ~ 0 and
// tau_eval carries the full simulation cost — exactly the asymmetry the
// paper's Fig. 6 measures. Every evaluation re-runs the same seeded plan,
// so repeated calls are bit-identical until the graph changes.

class SimulationEngine final : public AccuracyEngine {
 public:
  SimulationEngine(const sfg::Graph& g, const EngineOptions& opts)
      : opts_(opts), graph_(g), cache_(g) {}

  EngineKind kind() const override { return EngineKind::kSimulation; }
  EngineCapabilities capabilities() const override {
    // delta stays false: a Monte-Carlo run has no per-source
    // decomposition to combine from cache; evaluate_delta() inherits the
    // honest base-class throw and drivers fall back to full evaluation.
    return {.spectrum = true, .multirate = true, .stochastic = true,
            .delta = false};
  }
  double output_noise_power() override {
    // Safe to memoize: the run is seeded, so an unchanged graph replays
    // to the identical estimate anyway.
    return cache_.get(counters_,
                      [&] { return measure(/*keep_signal=*/false).power; });
  }
  NoiseSpectrum output_spectrum() override {
    const sim::ErrorMeasurement m = measure(/*keep_signal=*/true);
    const auto psd = sim::measured_error_psd(m, opts_.n_psd);
    NoiseSpectrum spectrum(opts_.n_psd);
    for (std::size_t k = 0; k < psd.size(); ++k) spectrum.bin(k) = psd[k];
    // measured_error_psd folds the DC (mean^2) power into bin 0; the
    // NoiseSpectrum convention keeps the mean separate.
    spectrum.bin(0) -= m.mean * m.mean;
    spectrum.set_mean(m.mean);
    return spectrum;
  }
  std::unique_ptr<AccuracyEngine> clone_for_worker(
      const sfg::Graph& g) const override {
    return std::make_unique<SimulationEngine>(g, opts_);
  }

 private:
  sim::ErrorMeasurement measure(bool keep_signal) const {
    if (opts_.sim_shards <= 1) {
      // Single-stream plan: one input of sim_samples with the transient
      // discard dropped from the measured output.
      Xoshiro256 rng(opts_.sim_seed);
      const auto input =
          uniform_signal(opts_.sim_samples, opts_.sim_amplitude, rng);
      return sim::measure_output_error(graph_, input, opts_.sim_discard,
                                       keep_signal);
    }
    const sim::ShardedErrorConfig mc{.total_samples = opts_.sim_samples,
                                     .shards = opts_.sim_shards,
                                     .discard = opts_.sim_discard,
                                     .seed = opts_.sim_seed,
                                     .input_amplitude = opts_.sim_amplitude,
                                     .keep_signal = keep_signal};
    return sim::measure_output_error_sharded(graph_, mc, opts_.pool);
  }

  EngineOptions opts_;
  const sfg::Graph& graph_;
  PowerCache cache_;
};

}  // namespace

double AccuracyEngine::evaluate_delta(sfg::NodeId,
                                      const fxp::FixedPointFormat&) {
  throw std::logic_error(
      std::string(name()) +
      " engine does not support incremental evaluation on this graph "
      "(capabilities().delta == false); apply the format and call "
      "output_noise_power() instead");
}

std::string_view to_string(EngineKind kind) {
  switch (kind) {
    case EngineKind::kFlat: return "flat";
    case EngineKind::kMoment: return "moment";
    case EngineKind::kPsd: return "psd";
    case EngineKind::kSimulation: return "simulation";
  }
  return "?";
}

std::optional<EngineKind> parse_engine_kind(std::string_view name) {
  if (name == "flat") return EngineKind::kFlat;
  if (name == "moment") return EngineKind::kMoment;
  if (name == "psd") return EngineKind::kPsd;
  if (name == "simulation" || name == "sim") return EngineKind::kSimulation;
  return std::nullopt;
}

bool engine_supports(EngineKind kind, const sfg::Graph& g) {
  if (kind == EngineKind::kFlat) return g.is_single_rate();
  return true;
}

std::unique_ptr<AccuracyEngine> make_engine(EngineKind kind,
                                            const sfg::Graph& g,
                                            const EngineOptions& opts) {
  if (!engine_supports(kind, g)) {
    throw std::invalid_argument(
        std::string(to_string(kind)) +
        " engine does not support this graph: the flat method assumes a "
        "single-rate LTI system and the graph contains up/down-samplers "
        "(use the psd, moment, or simulation engine instead)");
  }
  switch (kind) {
    case EngineKind::kFlat: return std::make_unique<FlatEngine>(g, opts);
    case EngineKind::kMoment:
      return std::make_unique<MomentEngine>(g, opts);
    case EngineKind::kPsd: return std::make_unique<PsdEngine>(g, opts);
    case EngineKind::kSimulation:
      return std::make_unique<SimulationEngine>(g, opts);
  }
  throw std::invalid_argument("unknown engine kind");
}

}  // namespace psdacc::core
