#include "core/psd_analyzer.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace psdacc::core {

PsdAnalyzer::PsdAnalyzer(const sfg::Graph& g, PsdOptions opts)
    : graph_(g), opts_(opts), scratch_(opts.n_psd), zero_(opts.n_psd) {
  PSDACC_EXPECTS(opts_.n_psd >= 2);
  PSDACC_EXPECTS(!g.has_cycles());
  g.validate();
  order_ = g.topological_order();
  topo_pos_.resize(g.node_count());
  for (std::size_t pos = 0; pos < order_.size(); ++pos)
    topo_pos_[order_[pos]] = pos;
  topology_at_build_ = g.topology_revision();
  delta_supported_ = true;
  for (sfg::NodeId id = 0; id < g.node_count(); ++id)
    if (std::holds_alternative<sfg::UpsampleNode>(g.node(id).payload))
      delta_supported_ = false;  // see supports_delta() for why
  tables_.resize(g.node_count());
  for (sfg::NodeId id = 0; id < g.node_count(); ++id) {
    const auto* block = std::get_if<sfg::BlockNode>(&g.node(id).payload);
    if (block == nullptr) continue;
    BlockTables t;
    t.signal_power = block->tf.power_response_grid(opts_.n_psd);
    t.signal_dc = block->tf.dc_gain();
    if (block->output_format.has_value() && !block->tf.is_fir()) {
      // Quantization inside the recursion is shaped by 1/A(z).
      const filt::TransferFunction ntf(std::vector<double>{1.0},
                                       block->tf.denominator());
      t.noise_power = ntf.power_response_grid(opts_.n_psd);
      t.noise_dc = ntf.dc_gain();
    } else if (block->output_format.has_value()) {
      t.noise_power.assign(opts_.n_psd, 1.0);
      t.noise_dc = 1.0;
    }
    tables_[id] = std::move(t);
  }
}

void PsdAnalyzer::evaluate_into(std::vector<NoiseSpectrum>& spectra) const {
  if (spectra.size() != graph_.node_count())
    spectra.resize(graph_.node_count(), NoiseSpectrum(opts_.n_psd));
  for (auto& s : spectra) s.reset(opts_.n_psd);
  if (&spectra == &workspace_) workspace_dirty_all_ = true;
  for (sfg::NodeId id : order_) {
    const sfg::NodeView node = graph_.node(id);
    NoiseSpectrum& out = spectra[id];
    struct Visitor {
      const PsdAnalyzer& self;
      sfg::NodeView node;
      sfg::NodeId id;
      std::vector<NoiseSpectrum>& spectra;
      NoiseSpectrum& out;

      const NoiseSpectrum& in(std::size_t port = 0) const {
        return spectra[node.inputs[port]];
      }

      void operator()(const sfg::InputNode&) const {
        // Inputs are noise-free; input quantization is modelled with an
        // explicit QuantizerNode.
      }
      void operator()(const sfg::OutputNode&) const { out = in(); }
      void operator()(const sfg::BlockNode& block) const {
        const auto& t = self.tables_[id];
        out = in();
        out.apply_power_response(t.signal_power, t.signal_dc);
        if (block.output_format.has_value()) {
          const auto moments =
              fxp::continuous_quantization_noise(*block.output_format);
          NoiseSpectrum& own = self.scratch_;
          own.reset(self.opts_.n_psd);
          own.add_white(moments);
          own.apply_power_response(t.noise_power, t.noise_dc);
          out.add_uncorrelated(own);
        }
      }
      void operator()(const sfg::GainNode& gain) const {
        out = in();
        out.apply_gain(gain.gain);
      }
      void operator()(const sfg::DelayNode&) const {
        out = in();  // |z^-k| == 1: PSD and mean unchanged
      }
      void operator()(const sfg::AdderNode& adder) const {
        for (std::size_t p = 0; p < node.inputs.size(); ++p)
          out.add_uncorrelated(in(p), adder.signs[p]);  // Eq. 14
      }
      void operator()(const sfg::DownsampleNode& d) const {
        out = in();
        out.decimate(d.factor, self.opts_.interp);
      }
      void operator()(const sfg::UpsampleNode& u) const {
        out = in();
        out.expand(u.factor);
      }
      void operator()(const sfg::QuantizerNode& q) const {
        out = in();
        out.add_white(q.moments);
      }
    };
    std::visit(Visitor{*this, node, id, spectra, out}, node.payload);
  }
}

std::vector<NoiseSpectrum> PsdAnalyzer::evaluate() const {
  std::vector<NoiseSpectrum> spectra;
  evaluate_into(spectra);
  return spectra;
}

NoiseSpectrum PsdAnalyzer::output_spectrum() const {
  const auto& outputs = graph_.outputs();
  PSDACC_EXPECTS(outputs.size() == 1);
  evaluate_into(workspace_);
  return workspace_[outputs[0]];
}

double PsdAnalyzer::output_noise_power() const {
  const auto& outputs = graph_.outputs();
  PSDACC_EXPECTS(outputs.size() == 1);
  evaluate_into(workspace_);
  return workspace_[outputs[0]].power();
}

// Propagates a unit injection (mean 1, variance 1; blocks shape it through
// their noise transfer table first, exactly as evaluate_into injects own
// noise) from the source to the output, along the signal path only — no
// other source injects. Restricted to the downstream cone: only its
// members are swept (in topological order), only spectra the previous
// sweep touched are re-zeroed, and out-of-cone adder operands read a
// shared zero spectrum — O(|cone|) work, not O(|graph|). The resulting
// scalars are format-independent; the shared SourceTermCache decides when
// they must be re-derived.
UnitResponse PsdAnalyzer::unit_response(sfg::NodeId source) const {
  const sfg::ConeView cone = graph_.downstream_cone(source);

  if (workspace_.size() != graph_.node_count()) {
    workspace_.resize(graph_.node_count(), NoiseSpectrum(opts_.n_psd));
    workspace_dirty_all_ = true;
  }
  if (workspace_dirty_all_) {
    for (auto& s : workspace_) s.reset(opts_.n_psd);
    workspace_dirty_all_ = false;
  } else {
    for (sfg::NodeId id : unit_touched_) workspace_[id].reset(opts_.n_psd);
  }
  unit_touched_.assign(cone.begin(), cone.end());
  std::sort(unit_touched_.begin(), unit_touched_.end(),
            [this](sfg::NodeId a, sfg::NodeId b) {
              return topo_pos_[a] < topo_pos_[b];
            });

  NoiseSpectrum& injected = workspace_[source];
  injected.add_white(fxp::NoiseMoments{1.0, 1.0});
  if (std::holds_alternative<sfg::BlockNode>(graph_.node(source).payload)) {
    const auto& t = tables_[source];
    PSDACC_EXPECTS(!t.noise_power.empty());
    injected.apply_power_response(t.noise_power, t.noise_dc);
  }

  for (sfg::NodeId id : unit_touched_) {
    if (id == source) continue;
    const sfg::NodeView node = graph_.node(id);
    NoiseSpectrum& out = workspace_[id];
    struct Visitor {
      const PsdAnalyzer& self;
      const sfg::ConeView& cone;
      sfg::NodeView node;
      sfg::NodeId id;
      NoiseSpectrum& out;

      const NoiseSpectrum& in(std::size_t port = 0) const {
        const sfg::NodeId src = node.inputs[port];
        return cone.contains(src) ? self.workspace_[src] : self.zero_;
      }

      void operator()(const sfg::InputNode&) const {}
      void operator()(const sfg::OutputNode&) const { out = in(); }
      void operator()(const sfg::BlockNode&) const {
        // Signal transfer only: this block's own noise belongs to its own
        // SourceTerm, never to another source's response.
        const auto& t = self.tables_[id];
        out = in();
        out.apply_power_response(t.signal_power, t.signal_dc);
      }
      void operator()(const sfg::GainNode& gain) const {
        out = in();
        out.apply_gain(gain.gain);
      }
      void operator()(const sfg::DelayNode&) const { out = in(); }
      void operator()(const sfg::AdderNode& adder) const {
        for (std::size_t p = 0; p < node.inputs.size(); ++p)
          out.add_uncorrelated(in(p), adder.signs[p]);
      }
      void operator()(const sfg::DownsampleNode& d) const {
        out = in();
        out.decimate(d.factor, self.opts_.interp);
      }
      void operator()(const sfg::UpsampleNode&) const {
        PSDACC_EXPECTS(false && "delta path is gated off for upsamplers");
      }
      void operator()(const sfg::QuantizerNode&) const { out = in(); }
    };
    std::visit(Visitor{*this, cone, node, id, out}, node.payload);
  }

  const auto& outputs = graph_.outputs();
  PSDACC_EXPECTS(outputs.size() == 1);
  // A source that never reaches the output leaves an all-zero response.
  const sfg::NodeId out_id = outputs[0];
  if (!cone.contains(out_id)) return UnitResponse{};
  return UnitResponse{.power = workspace_[out_id].variance(),
                      .dc = workspace_[out_id].mean()};
}

double PsdAnalyzer::output_noise_power_delta(
    sfg::NodeId v, const fxp::FixedPointFormat& format) const {
  PSDACC_EXPECTS(delta_supported_);
  return delta_terms_.power_delta(
      graph_, topology_at_build_, v, format,
      [this](sfg::NodeId source) { return unit_response(source); });
}

}  // namespace psdacc::core
