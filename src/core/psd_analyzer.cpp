#include "core/psd_analyzer.hpp"

#include "support/assert.hpp"

namespace psdacc::core {

PsdAnalyzer::PsdAnalyzer(const sfg::Graph& g, PsdOptions opts)
    : graph_(g), opts_(opts), scratch_(opts.n_psd) {
  PSDACC_EXPECTS(opts_.n_psd >= 2);
  PSDACC_EXPECTS(!g.has_cycles());
  g.validate();
  order_ = g.topological_order();
  tables_.resize(g.node_count());
  for (sfg::NodeId id = 0; id < g.node_count(); ++id) {
    const auto* block = std::get_if<sfg::BlockNode>(&g.node(id).payload);
    if (block == nullptr) continue;
    BlockTables t;
    t.signal_power = block->tf.power_response_grid(opts_.n_psd);
    t.signal_dc = block->tf.dc_gain();
    if (block->output_format.has_value() && !block->tf.is_fir()) {
      // Quantization inside the recursion is shaped by 1/A(z).
      const filt::TransferFunction ntf(std::vector<double>{1.0},
                                       block->tf.denominator());
      t.noise_power = ntf.power_response_grid(opts_.n_psd);
      t.noise_dc = ntf.dc_gain();
    } else if (block->output_format.has_value()) {
      t.noise_power.assign(opts_.n_psd, 1.0);
      t.noise_dc = 1.0;
    }
    tables_[id] = std::move(t);
  }
}

void PsdAnalyzer::evaluate_into(std::vector<NoiseSpectrum>& spectra) const {
  if (spectra.size() != graph_.node_count())
    spectra.resize(graph_.node_count(), NoiseSpectrum(opts_.n_psd));
  for (auto& s : spectra) s.reset(opts_.n_psd);
  for (sfg::NodeId id : order_) {
    const sfg::Node& node = graph_.node(id);
    NoiseSpectrum& out = spectra[id];
    struct Visitor {
      const PsdAnalyzer& self;
      const sfg::Node& node;
      sfg::NodeId id;
      std::vector<NoiseSpectrum>& spectra;
      NoiseSpectrum& out;

      const NoiseSpectrum& in(std::size_t port = 0) const {
        return spectra[node.inputs[port]];
      }

      void operator()(const sfg::InputNode&) const {
        // Inputs are noise-free; input quantization is modelled with an
        // explicit QuantizerNode.
      }
      void operator()(const sfg::OutputNode&) const { out = in(); }
      void operator()(const sfg::BlockNode& block) const {
        const auto& t = self.tables_[id];
        out = in();
        out.apply_power_response(t.signal_power, t.signal_dc);
        if (block.output_format.has_value()) {
          const auto moments =
              fxp::continuous_quantization_noise(*block.output_format);
          NoiseSpectrum& own = self.scratch_;
          own.reset(self.opts_.n_psd);
          own.add_white(moments);
          own.apply_power_response(t.noise_power, t.noise_dc);
          out.add_uncorrelated(own);
        }
      }
      void operator()(const sfg::GainNode& gain) const {
        out = in();
        out.apply_gain(gain.gain);
      }
      void operator()(const sfg::DelayNode&) const {
        out = in();  // |z^-k| == 1: PSD and mean unchanged
      }
      void operator()(const sfg::AdderNode& adder) const {
        for (std::size_t p = 0; p < node.inputs.size(); ++p)
          out.add_uncorrelated(in(p), adder.signs[p]);  // Eq. 14
      }
      void operator()(const sfg::DownsampleNode& d) const {
        out = in();
        out.decimate(d.factor, self.opts_.interp);
      }
      void operator()(const sfg::UpsampleNode& u) const {
        out = in();
        out.expand(u.factor);
      }
      void operator()(const sfg::QuantizerNode& q) const {
        out = in();
        out.add_white(q.moments);
      }
    };
    std::visit(Visitor{*this, node, id, spectra, out}, node.payload);
  }
}

std::vector<NoiseSpectrum> PsdAnalyzer::evaluate() const {
  std::vector<NoiseSpectrum> spectra;
  evaluate_into(spectra);
  return spectra;
}

NoiseSpectrum PsdAnalyzer::output_spectrum() const {
  const auto outputs = graph_.outputs();
  PSDACC_EXPECTS(outputs.size() == 1);
  evaluate_into(workspace_);
  return workspace_[outputs[0]];
}

double PsdAnalyzer::output_noise_power() const {
  const auto outputs = graph_.outputs();
  PSDACC_EXPECTS(outputs.size() == 1);
  evaluate_into(workspace_);
  return workspace_[outputs[0]].power();
}

}  // namespace psdacc::core
