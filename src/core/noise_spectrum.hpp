/// @file noise_spectrum.hpp
/// Discrete quantization-noise spectrum — the quantity the proposed method
/// propagates (Fig. 1.b of the paper).
///
/// Deviation from the paper's literal Eq. 10: the paper writes S(0) = mu^2
/// and S(k != 0) = sigma^2 / N, which loses a sigma^2/N sliver of power at
/// DC. psdacc keeps the white variance exactly flat over all N bins and the
/// mean separate, so power bookkeeping is exact for every N.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "fixedpoint/noise_model.hpp"

namespace psdacc::core {

/// Mean + discrete PSD of one additive quantization noise.
///
/// A NoiseSpectrum holds:
///  * `mean` — the signed deterministic (DC) component of the noise. Means
///    add coherently at adders (the paper's Eq. 4 cross term L_ij mu_i mu_j)
///    and scale by H(0) through blocks, so tracking the sign matters.
///  * `bins` — an N_PSD-point PSD of the zero-mean stochastic part, bin k
///    covering normalized frequency k/N (periodic). sum(bins) == variance.
///
/// Total noise power (Eq. 9): power() = mean^2 + sum(bins).
class NoiseSpectrum {
 public:
  /// All-zero spectrum over @p n_bins.
  explicit NoiseSpectrum(std::size_t n_bins);
  /// White spectrum with the given PQN moments (Eq. 10).
  /// @param n_bins  number of PSD bins (the paper's N_PSD)
  /// @param moments first two moments of the injected noise
  NoiseSpectrum(std::size_t n_bins, const fxp::NoiseMoments& moments);

  /// Re-initializes to the all-zero spectrum over @p n_bins, reusing the
  /// existing bin storage when possible (for allocation-free hot loops).
  void reset(std::size_t n_bins);

  std::size_t size() const { return bins_.size(); }
  double mean() const { return mean_; }
  void set_mean(double m) { mean_ = m; }
  std::span<const double> bins() const { return bins_; }
  double& bin(std::size_t k) { return bins_[k]; }
  double bin(std::size_t k) const { return bins_[k]; }

  /// Variance = sum of bins.
  double variance() const;
  /// Total power mean^2 + variance (Eq. 9 discretized).
  double power() const;

  /// Eq. 14: incoherent addition of an uncorrelated noise (bins add), but
  /// coherent addition of the deterministic means.
  /// @param other the spectrum joining this one at an adder
  /// @param sign  the adder sign applied to @p other's mean
  void add_uncorrelated(const NoiseSpectrum& other, double sign = 1.0);

  /// Adds an uncorrelated white noise with the given PQN moments (Eqs. 10 +
  /// 14 fused) without materializing a temporary spectrum.
  void add_white(const fxp::NoiseMoments& moments, double sign = 1.0);

  /// Eq. 11: multiplies bins by |H|^2 sampled on the k/N grid, and the mean
  /// by the DC response.
  /// @param power_response |H(k/N)|^2 per bin; must have size() entries
  /// @param dc_response    H(0), applied (signed) to the mean
  void apply_power_response(std::span<const double> power_response,
                            double dc_response);

  /// Scales by a constant gain @p g (bins by g^2, mean by g).
  void apply_gain(double g);

  /// Multirate rules (documented in DESIGN.md):
  /// decimate: S_y(F) = (1/M) sum_r S_x((F + r) / M); mean unchanged.
  /// Off-grid indices use the chosen interpolation.
  enum class Interp { kNearest, kLinear };
  void decimate(std::size_t factor, Interp interp = Interp::kLinear);
  /// expand (zero-insertion): S_y(F) = (1/L) S_x(L F mod 1); the mean
  /// becomes mean/L and its non-DC image lines at F = r/L are folded into
  /// the corresponding bins with power (mean/L)^2 each.
  void expand(std::size_t factor);

  /// Resamples the spectrum to a different bin count, preserving variance
  /// (used when comparing across N_PSD settings).
  /// @return a new spectrum with @p new_bins bins and identical power
  NoiseSpectrum resampled(std::size_t new_bins) const;

 private:
  double mean_ = 0.0;
  std::vector<double> bins_;
};

}  // namespace psdacc::core
