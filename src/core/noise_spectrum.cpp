#include "core/noise_spectrum.hpp"

#include <cmath>

#include "support/assert.hpp"

namespace psdacc::core {

NoiseSpectrum::NoiseSpectrum(std::size_t n_bins) : bins_(n_bins, 0.0) {
  PSDACC_EXPECTS(n_bins >= 2);
}

NoiseSpectrum::NoiseSpectrum(std::size_t n_bins,
                             const fxp::NoiseMoments& moments)
    : mean_(moments.mean),
      bins_(n_bins, moments.variance / static_cast<double>(n_bins)) {
  PSDACC_EXPECTS(n_bins >= 2);
}

void NoiseSpectrum::reset(std::size_t n_bins) {
  PSDACC_EXPECTS(n_bins >= 2);
  mean_ = 0.0;
  bins_.assign(n_bins, 0.0);
}

double NoiseSpectrum::variance() const {
  double acc = 0.0;
  for (double v : bins_) acc += v;
  return acc;
}

double NoiseSpectrum::power() const { return mean_ * mean_ + variance(); }

void NoiseSpectrum::add_uncorrelated(const NoiseSpectrum& other,
                                     double sign) {
  PSDACC_EXPECTS(other.size() == size());
  for (std::size_t k = 0; k < bins_.size(); ++k) bins_[k] += other.bins_[k];
  mean_ += sign * other.mean_;
}

void NoiseSpectrum::add_white(const fxp::NoiseMoments& moments, double sign) {
  const double per_bin = moments.variance / static_cast<double>(bins_.size());
  for (double& v : bins_) v += per_bin;
  mean_ += sign * moments.mean;
}

void NoiseSpectrum::apply_power_response(
    std::span<const double> power_response, double dc_response) {
  PSDACC_EXPECTS(power_response.size() == size());
  for (std::size_t k = 0; k < bins_.size(); ++k) {
    PSDACC_EXPECTS(power_response[k] >= 0.0);
    bins_[k] *= power_response[k];
  }
  mean_ *= dc_response;
}

void NoiseSpectrum::apply_gain(double g) {
  for (double& v : bins_) v *= g * g;
  mean_ *= g;
}

namespace {

// Periodic linear interpolation of a bin array at a fractional index.
double sample_bins(std::span<const double> bins, double index,
                   NoiseSpectrum::Interp interp) {
  const auto n = static_cast<double>(bins.size());
  double idx = std::fmod(index, n);
  if (idx < 0.0) idx += n;
  if (interp == NoiseSpectrum::Interp::kNearest) {
    const auto k = static_cast<std::size_t>(std::lround(idx)) % bins.size();
    return bins[k];
  }
  const auto lo = static_cast<std::size_t>(std::floor(idx));
  const double frac = idx - static_cast<double>(lo);
  const std::size_t hi = (lo + 1) % bins.size();
  return bins[lo % bins.size()] * (1.0 - frac) + bins[hi] * frac;
}

}  // namespace

void NoiseSpectrum::decimate(std::size_t factor, Interp interp) {
  PSDACC_EXPECTS(factor >= 1);
  if (factor == 1) return;
  const std::size_t n = bins_.size();
  std::vector<double> out(n, 0.0);
  const double inv_m = 1.0 / static_cast<double>(factor);
  for (std::size_t k = 0; k < n; ++k) {
    double acc = 0.0;
    for (std::size_t r = 0; r < factor; ++r) {
      const double src_index =
          (static_cast<double>(k) +
           static_cast<double>(r) * static_cast<double>(n)) *
          inv_m;
      acc += sample_bins(bins_, src_index, interp);
    }
    out[k] = acc * inv_m;
  }
  bins_ = std::move(out);
  // mean unchanged: E[x[Mn]] == E[x[n]].
}

void NoiseSpectrum::expand(std::size_t factor) {
  PSDACC_EXPECTS(factor >= 1);
  if (factor == 1) return;
  const std::size_t n = bins_.size();
  const double inv_l = 1.0 / static_cast<double>(factor);
  std::vector<double> out(n, 0.0);
  for (std::size_t k = 0; k < n; ++k)
    out[k] = bins_[(k * factor) % n] * inv_l;
  // The zero-stuffed deterministic mean becomes a periodic impulse train:
  // DC line mean/L stays coherent, the L-1 image lines at F = r/L carry
  // power (mean/L)^2 each and are folded into the stochastic bins.
  const double image_power = (mean_ * inv_l) * (mean_ * inv_l);
  for (std::size_t r = 1; r < factor; ++r) {
    const std::size_t k = (r * n) / factor;  // exact when L | N (asserted)
    PSDACC_EXPECTS((r * n) % factor == 0 &&
                   "N_PSD must be divisible by the upsampling factor");
    out[k] += image_power;
  }
  bins_ = std::move(out);
  mean_ *= inv_l;
}

NoiseSpectrum NoiseSpectrum::resampled(std::size_t new_bins) const {
  PSDACC_EXPECTS(new_bins >= 2);
  NoiseSpectrum out(new_bins);
  out.mean_ = mean_;
  const double ratio = static_cast<double>(bins_.size()) /
                       static_cast<double>(new_bins);
  for (std::size_t k = 0; k < new_bins; ++k) {
    out.bins_[k] =
        sample_bins(bins_, static_cast<double>(k) * ratio, Interp::kLinear) *
        ratio;
  }
  return out;
}

}  // namespace psdacc::core
