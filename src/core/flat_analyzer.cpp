#include "core/flat_analyzer.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "support/assert.hpp"

namespace psdacc::core {

using cplx = std::complex<double>;

FlatAnalyzer::FlatAnalyzer(const sfg::Graph& g, std::size_t n_psd)
    : graph_(g), n_psd_(n_psd), zero_row_(n_psd, cplx(0.0, 0.0)) {
  PSDACC_EXPECTS(n_psd >= 2);
  PSDACC_EXPECTS(!g.has_cycles());
  PSDACC_EXPECTS(g.is_single_rate());
  g.validate();
  order_ = g.topological_order();
  topo_pos_.resize(g.node_count());
  for (std::size_t pos = 0; pos < order_.size(); ++pos)
    topo_pos_[order_[pos]] = pos;
  topology_at_build_ = g.topology_revision();
  const auto& outputs = g.outputs();
  PSDACC_EXPECTS(outputs.size() == 1);
  output_ = outputs[0];
  block_grids_.resize(g.node_count());
  ntf_grids_.resize(g.node_count());
  for (sfg::NodeId id = 0; id < g.node_count(); ++id) {
    const auto* block = std::get_if<sfg::BlockNode>(&g.node(id).payload);
    if (block == nullptr) continue;
    block_grids_[id] = block->tf.response_grid(n_psd_);
    if (block->output_format.has_value() && !block->tf.is_fir()) {
      const filt::TransferFunction ntf(std::vector<double>{1.0},
                                       block->tf.denominator());
      ntf_grids_[id] = ntf.response_grid(n_psd_);
    }
  }
}

std::vector<cplx> FlatAnalyzer::source_response(sfg::NodeId source) const {
  return sweep_response(source);  // public form: copies out of the workspace
}

// responses[id][k]: complex transfer from the source's injection point to
// node id at frequency k/n. Zero until the source is reached — which is
// why the sweep can restrict itself to the source's downstream cone: every
// node outside it provably keeps an all-zero row, so only cone members are
// visited (in topological order), only rows the previous sweep touched are
// re-zeroed, and out-of-cone adder operands read the shared zero row.
const std::vector<cplx>& FlatAnalyzer::sweep_response(
    sfg::NodeId source) const {
  const std::size_t n = n_psd_;
  const sfg::ConeView cone = graph_.downstream_cone(source);
  if (resp_ws_.size() != graph_.node_count()) {
    resp_ws_.assign(graph_.node_count(),
                    std::vector<cplx>(n, cplx(0.0, 0.0)));
    resp_touched_.clear();
  } else {
    for (sfg::NodeId id : resp_touched_)
      std::fill(resp_ws_[id].begin(), resp_ws_[id].end(), cplx(0.0, 0.0));
  }
  resp_touched_.assign(cone.begin(), cone.end());
  std::sort(resp_touched_.begin(), resp_touched_.end(),
            [this](sfg::NodeId a, sfg::NodeId b) {
              return topo_pos_[a] < topo_pos_[b];
            });

  auto injection = [&](sfg::NodeId id) -> std::vector<cplx> {
    const sfg::NodeView node = graph_.node(id);
    if (const auto* block = std::get_if<sfg::BlockNode>(&node.payload)) {
      PSDACC_EXPECTS(block->output_format.has_value());
      if (!block->tf.is_fir()) return ntf_grids_[id];
      return std::vector<cplx>(n, cplx(1.0, 0.0));
    }
    PSDACC_EXPECTS(
        std::holds_alternative<sfg::QuantizerNode>(node.payload));
    return std::vector<cplx>(n, cplx(1.0, 0.0));
  };

  for (sfg::NodeId id : resp_touched_) {
    const sfg::NodeView node = graph_.node(id);
    auto& out = resp_ws_[id];
    struct Visitor {
      const FlatAnalyzer& self;
      const sfg::ConeView& cone;
      sfg::NodeView node;
      sfg::NodeId id;
      std::vector<cplx>& out;
      std::size_t n;

      const std::vector<cplx>& in(std::size_t port = 0) const {
        const sfg::NodeId src = node.inputs[port];
        return cone.contains(src) ? self.resp_ws_[src] : self.zero_row_;
      }

      void operator()(const sfg::InputNode&) const {}
      void operator()(const sfg::OutputNode&) const { out = in(); }
      void operator()(const sfg::BlockNode&) const {
        const auto& h = self.block_grids_[id];
        for (std::size_t k = 0; k < n; ++k) out[k] = in()[k] * h[k];
      }
      void operator()(const sfg::GainNode& gain) const {
        for (std::size_t k = 0; k < n; ++k) out[k] = in()[k] * gain.gain;
      }
      void operator()(const sfg::DelayNode& delay) const {
        for (std::size_t k = 0; k < n; ++k) {
          const double w = -2.0 * std::numbers::pi *
                           static_cast<double>(k * delay.delay) /
                           static_cast<double>(n);
          out[k] = in()[k] * cplx(std::cos(w), std::sin(w));
        }
      }
      void operator()(const sfg::AdderNode& adder) const {
        for (std::size_t p = 0; p < node.inputs.size(); ++p)
          for (std::size_t k = 0; k < n; ++k)
            out[k] += adder.signs[p] * in(p)[k];
      }
      void operator()(const sfg::DownsampleNode&) const {
        PSDACC_EXPECTS(false && "flat analyzer is single-rate");
      }
      void operator()(const sfg::UpsampleNode&) const {
        PSDACC_EXPECTS(false && "flat analyzer is single-rate");
      }
      void operator()(const sfg::QuantizerNode&) const {
        // The signal (and any riding noise) passes through unchanged; the
        // quantizer's own noise is handled when it is the source.
        out = in();
      }
    };
    std::visit(Visitor{*this, cone, node, id, out, n}, node.payload);
    if (id == source) {
      // Inject after the node's own transfer: the noise appears at the
      // node's *output*.
      out = injection(id);
    }
  }
  // A source that never reaches the output has an all-zero response.
  return cone.contains(output_) ? resp_ws_[output_] : zero_row_;
}

NoiseSpectrum FlatAnalyzer::output_spectrum() const {
  NoiseSpectrum total(n_psd_);
  double total_mean = 0.0;
  for (sfg::NodeId src : graph_.noise_sources()) {
    const auto moments = sfg::noise_source_moments(graph_.node(src));
    const auto& g = sweep_response(src);
    const double per_bin = moments.variance / static_cast<double>(n_psd_);
    for (std::size_t k = 0; k < n_psd_; ++k)
      total.bin(k) += per_bin * std::norm(g[k]);
    total_mean += moments.mean * g[0].real();
  }
  total.set_mean(total_mean);
  return total;
}

double FlatAnalyzer::output_noise_power() const {
  return output_spectrum().power();
}

// Scalar reduction of the per-source complex response — one full sweep,
// re-derived only when the shared SourceTermCache says the propagation
// state moved (the response depends only on topology and coefficients).
UnitResponse FlatAnalyzer::unit_response(sfg::NodeId source) const {
  const auto& g = sweep_response(source);
  double acc = 0.0;
  for (const cplx& v : g) acc += std::norm(v);
  return UnitResponse{.power = acc / static_cast<double>(n_psd_),
                      .dc = g[0].real()};
}

double FlatAnalyzer::output_noise_power_delta(
    sfg::NodeId v, const fxp::FixedPointFormat& format) const {
  return delta_terms_.power_delta(
      graph_, topology_at_build_, v, format,
      [this](sfg::NodeId source) { return unit_response(source); });
}

}  // namespace psdacc::core
