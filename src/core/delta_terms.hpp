/// @file delta_terms.hpp
/// Decomposed per-source noise-contribution cache shared by the three
/// analytical analyzers (Psd / Moment / Flat) behind their
/// output_noise_power_delta() probes.
///
/// Each analyzer's hypothesis is the same linear-decomposition argument:
/// the output power splits into one term per noise source, each the
/// source's current PQN moments scaled by a format-independent *unit
/// response* (output contribution per unit source variance / per unit
/// source mean). What differs per analyzer is only how a unit response is
/// derived (a cone-restricted PSD sweep, a cone-restricted moment sweep,
/// or a reduction of the flat per-source complex response), so that part
/// is a callback and everything else — lazy build, revision-keyed
/// re-scaling, invalidation, and the fixed-order combine — lives here
/// once.
///
/// Invalidation rules (keyed on sfg::Graph's counters):
///  * a *source* node's revision moving re-scales that one cached term —
///    O(1); source nodes mutate through word-length stamps, which the
///    unit responses are independent of by construction;
///  * any *non-source* node's revision moving (a gain retuned, a delay
///    resized, an adder sign edited through the mutable accessor) drops
///    every unit response, because such nodes only carry propagation
///    state the units were derived from. Detected via a watermark summed
///    over the non-source nodes' revisions, so the common probe loop
///    (only source formats move) never rebuilds;
///  * topology edits are asserted away — analyzers freeze topology at
///    construction, as ever.
#pragma once

#include <cstdint>
#include <vector>

#include "fixedpoint/noise_model.hpp"
#include "sfg/graph.hpp"
#include "support/assert.hpp"

namespace psdacc::core {

/// One analyzer-specific unit response: the output contribution of a
/// source per unit injected variance (`power`) and per unit injected mean
/// (`dc`). Both are pure functions of topology and coefficients.
struct UnitResponse {
  double power = 0.0;
  double dc = 0.0;
};

/// The cache itself. Analyzers hold one as a `mutable` member (it is lazy
/// evaluation scratch under the same one-thread-at-a-time contract as
/// their workspaces) and call power_delta() with their unit-response
/// builder.
class SourceTermCache {
 public:
  /// Output noise power as if source @p v injected the continuous-PQN
  /// moments of @p format, every other source at its current graph state.
  /// @param g        the analyzer's graph
  /// @param topology_at_build  the analyzer's frozen topology revision
  /// @param build    callable sfg::NodeId -> UnitResponse, invoked lazily
  ///                 once per source (and again only after a non-source
  ///                 node mutation)
  template <typename Build>
  double power_delta(const sfg::Graph& g, std::uint64_t topology_at_build,
                     sfg::NodeId v, const fxp::FixedPointFormat& format,
                     Build&& build) {
    sync(g, topology_at_build, build);
    const auto m = fxp::continuous_quantization_noise(format);
    // Fixed ascending-source summation order: the result is a pure
    // function of (graph formats, v, format), never of probe history —
    // that is what keeps delta-probing bit-identical across worker
    // counts and probe schedules.
    double power = 0.0;
    double mean = 0.0;
    bool found = false;
    for (const Term& term : terms_) {
      if (term.id == v) {
        found = true;
        power += m.variance * term.unit.power;
        mean += m.mean * term.unit.dc;
      } else {
        power += term.power;
        mean += term.mean;
      }
    }
    PSDACC_EXPECTS(found && "delta target must be a noise source");
    return mean * mean + power;
  }

 private:
  struct Term {
    sfg::NodeId id = 0;
    bool unit_ready = false;
    UnitResponse unit;
    std::uint64_t seen = ~std::uint64_t{0};
    double power = 0.0;  ///< scaled: contribution to the output power sum
    double mean = 0.0;   ///< scaled: contribution to the output mean
  };

  template <typename Build>
  void sync(const sfg::Graph& g, std::uint64_t topology_at_build,
            Build&& build) {
    PSDACC_EXPECTS(g.topology_revision() == topology_at_build &&
                   "graph topology must not change under an analyzer");
    if (!built_) {
      is_source_.assign(g.node_count(), 0);
      for (sfg::NodeId src : g.noise_sources()) {
        Term term;
        term.id = src;
        terms_.push_back(term);
        is_source_[src] = 1;
      }
      built_ = true;
    }
    if (synced_revision_ == g.revision()) return;
    // Non-source mutations (a gain retuned between probes, say) change
    // the propagation the unit responses were derived from: drop them
    // all. Word-length stamps only ever move source revisions, so the
    // watermark is static across a whole optimizer search.
    std::uint64_t watermark = 0;
    for (sfg::NodeId id = 0; id < g.node_count(); ++id)
      if (!is_source_[id]) watermark += g.node_revision(id);
    if (watermark != non_source_watermark_) {
      for (Term& term : terms_) {
        term.unit_ready = false;
        term.seen = ~std::uint64_t{0};
      }
      non_source_watermark_ = watermark;
    }
    for (Term& term : terms_) {
      if (term.unit_ready && term.seen == g.node_revision(term.id))
        continue;
      if (!term.unit_ready) {
        term.unit = build(term.id);
        term.unit_ready = true;
      }
      const auto m = sfg::noise_source_moments(g.node(term.id));
      term.power = m.variance * term.unit.power;
      term.mean = m.mean * term.unit.dc;
      term.seen = g.node_revision(term.id);
    }
    synced_revision_ = g.revision();
  }

  std::vector<Term> terms_;
  std::vector<char> is_source_;
  bool built_ = false;
  std::uint64_t synced_revision_ = ~std::uint64_t{0};
  std::uint64_t non_source_watermark_ = ~std::uint64_t{0};
};

}  // namespace psdacc::core
