/// @file delta_terms.hpp
/// Decomposed per-source noise-contribution cache shared by the three
/// analytical analyzers (Psd / Moment / Flat) behind their
/// output_noise_power_delta() probes.
///
/// Each analyzer's hypothesis is the same linear-decomposition argument:
/// the output power splits into one term per noise source, each the
/// source's current PQN moments scaled by a format-independent *unit
/// response* (output contribution per unit source variance / per unit
/// source mean). What differs per analyzer is only how a unit response is
/// derived (a cone-restricted PSD sweep, a cone-restricted moment sweep,
/// or a reduction of the flat per-source complex response), so that part
/// is a callback and everything else — lazy build, revision-keyed
/// re-scaling, invalidation, and the fixed-order combine — lives here
/// once.
///
/// Invalidation rules (keyed on sfg::Graph's counters):
///  * a format edit (`Graph::set_format`) re-scales only the edited
///    source's term, discovered by replaying the graph's bounded
///    format-edit journal — O(edits), independent of both graph and
///    source count. If the journal window has lapsed, a per-term revision
///    scan (O(S), never O(N)) recovers;
///  * `propagation_revision()` moving (a gain retuned via set_payload,
///    say) drops every unit response, because non-format edits change the
///    propagation the units were derived from;
///  * topology edits are asserted away — analyzers freeze topology at
///    construction, as ever.
///
/// Probe cost: with <= 64 sources the probe is the historical exact
/// linear walk in ascending source order (bit-identical to prior
/// releases). Past that, terms are additionally folded into a fixed-shape
/// pairwise summation tree (power-of-two padded, zero-filled), and a probe
/// reads root - leaf + hypothesis in O(1). Both forms are pure functions
/// of the current graph state — never of probe or edit history — which is
/// what keeps delta-probing bit-identical across worker counts and probe
/// schedules.
#pragma once

#include <cstdint>
#include <vector>

#include "fixedpoint/noise_model.hpp"
#include "sfg/graph.hpp"
#include "support/assert.hpp"

namespace psdacc::core {

/// One analyzer-specific unit response: the output contribution of a
/// source per unit injected variance (`power`) and per unit injected mean
/// (`dc`). Both are pure functions of topology and coefficients.
struct UnitResponse {
  double power = 0.0;
  double dc = 0.0;
};

/// The cache itself. Analyzers hold one as a `mutable` member (it is lazy
/// evaluation scratch under the same one-thread-at-a-time contract as
/// their workspaces) and call power_delta() with their unit-response
/// builder.
class SourceTermCache {
 public:
  /// Output noise power as if source @p v injected the continuous-PQN
  /// moments of @p format, every other source at its current graph state.
  /// @param g        the analyzer's graph
  /// @param topology_at_build  the analyzer's frozen topology revision
  /// @param build    callable sfg::NodeId -> UnitResponse, invoked lazily
  ///                 once per source (and again only after a
  ///                 propagation-affecting mutation)
  template <typename Build>
  double power_delta(const sfg::Graph& g, std::uint64_t topology_at_build,
                     sfg::NodeId v, const fxp::FixedPointFormat& format,
                     Build&& build) {
    sync(g, topology_at_build, build);
    const auto m = fxp::continuous_quantization_noise(format);
    PSDACC_EXPECTS(v < term_index_.size() && term_index_[v] != kNoTerm &&
                   "delta target must be a noise source");
    if (terms_.size() <= kLinearProbeLimit) {
      // Fixed ascending-source summation order (the historical exact
      // form, kept bit-identical for small graphs).
      double power = 0.0;
      double mean = 0.0;
      for (const Term& term : terms_) {
        if (term.id == v) {
          power += m.variance * term.unit.power;
          mean += m.mean * term.unit.dc;
        } else {
          power += term.power;
          mean += term.mean;
        }
      }
      return mean * mean + power;
    }
    // Root - leaf + hypothesis: O(1), and a pure function of the current
    // leaf values because the tree shape is fixed.
    const Term& term = terms_[term_index_[v]];
    const double power = tree_[1].power - term.power + m.variance * term.unit.power;
    const double mean = tree_[1].mean - term.mean + m.mean * term.unit.dc;
    return mean * mean + power;
  }

 private:
  static constexpr std::uint32_t kNoTerm = ~std::uint32_t{0};
  static constexpr std::uint64_t kNever = ~std::uint64_t{0};
  /// Up to this many sources a probe walks all terms exactly as prior
  /// releases did; beyond it the pairwise tree takes over.
  static constexpr std::size_t kLinearProbeLimit = 64;

  struct Term {
    sfg::NodeId id = 0;
    bool unit_ready = false;
    UnitResponse unit;
    std::uint64_t seen = kNever;
    double power = 0.0;  ///< scaled: contribution to the output power sum
    double mean = 0.0;   ///< scaled: contribution to the output mean
  };

  struct PowerMean {
    double power = 0.0;
    double mean = 0.0;
  };

  template <typename Build>
  void refresh_term(const sfg::Graph& g, Term& term, Build&& build) {
    if (!term.unit_ready) {
      term.unit = build(term.id);
      term.unit_ready = true;
    }
    const auto m = sfg::noise_source_moments(g.node(term.id));
    term.power = m.variance * term.unit.power;
    term.mean = m.mean * term.unit.dc;
    term.seen = g.node_revision(term.id);
  }

  void rebuild_tree() {
    if (terms_.size() <= kLinearProbeLimit) return;
    std::size_t leaves = 1;
    while (leaves < terms_.size()) leaves <<= 1;
    tree_leaves_ = leaves;
    tree_.assign(2 * leaves, PowerMean{});
    for (std::size_t i = 0; i < terms_.size(); ++i)
      tree_[leaves + i] = {terms_[i].power, terms_[i].mean};
    for (std::size_t i = leaves - 1; i >= 1; --i)
      tree_[i] = {tree_[2 * i].power + tree_[2 * i + 1].power,
                  tree_[2 * i].mean + tree_[2 * i + 1].mean};
  }

  void update_tree_leaf(std::size_t idx) {
    if (tree_leaves_ == 0) return;
    std::size_t i = tree_leaves_ + idx;
    tree_[i] = {terms_[idx].power, terms_[idx].mean};
    for (i >>= 1; i >= 1; i >>= 1)
      tree_[i] = {tree_[2 * i].power + tree_[2 * i + 1].power,
                  tree_[2 * i].mean + tree_[2 * i + 1].mean};
  }

  template <typename Build>
  void sync(const sfg::Graph& g, std::uint64_t topology_at_build,
            Build&& build) {
    PSDACC_EXPECTS(g.topology_revision() == topology_at_build &&
                   "graph topology must not change under an analyzer");
    if (!built_) {
      term_index_.assign(g.node_count(), kNoTerm);
      const auto& sources = g.noise_sources();
      terms_.reserve(sources.size());
      for (sfg::NodeId src : sources) {
        term_index_[src] = static_cast<std::uint32_t>(terms_.size());
        Term term;
        term.id = src;
        terms_.push_back(term);
      }
      built_ = true;
    }
    if (synced_revision_ == g.revision()) return;
    if (synced_propagation_ != g.propagation_revision()) {
      // Non-format payload edits change the propagation the unit
      // responses were derived from: drop and rebuild them all.
      for (Term& term : terms_) {
        term.unit_ready = false;
        term.seen = kNever;
        refresh_term(g, term, build);
      }
      rebuild_tree();
      synced_propagation_ = g.propagation_revision();
    } else {
      scratch_ids_.clear();
      if (g.format_edits_since(synced_format_count_, scratch_ids_)) {
        // Replay the journal: only the edited sources re-scale.
        for (sfg::NodeId id : scratch_ids_) {
          const std::uint32_t idx =
              id < term_index_.size() ? term_index_[id] : kNoTerm;
          if (idx == kNoTerm) continue;
          Term& term = terms_[idx];
          if (term.unit_ready && term.seen == g.node_revision(term.id))
            continue;
          refresh_term(g, term, build);
          update_tree_leaf(idx);
        }
      } else {
        // Journal window lapsed: per-term revision scan (O(S), no O(N)).
        bool any = false;
        for (std::size_t i = 0; i < terms_.size(); ++i) {
          Term& term = terms_[i];
          if (term.unit_ready && term.seen == g.node_revision(term.id))
            continue;
          refresh_term(g, term, build);
          any = true;
        }
        if (any) rebuild_tree();
      }
    }
    synced_format_count_ = g.format_edit_count();
    synced_revision_ = g.revision();
  }

  std::vector<Term> terms_;
  std::vector<std::uint32_t> term_index_;  ///< NodeId -> index in terms_
  std::vector<sfg::NodeId> scratch_ids_;
  std::vector<PowerMean> tree_;  ///< fixed-shape pairwise sum, root at [1]
  std::size_t tree_leaves_ = 0;  ///< padded leaf count; 0 = linear mode
  bool built_ = false;
  std::uint64_t synced_revision_ = kNever;
  std::uint64_t synced_propagation_ = kNever;
  std::uint64_t synced_format_count_ = 0;
};

}  // namespace psdacc::core
