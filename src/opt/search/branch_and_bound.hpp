/// @file branch_and_bound.hpp
/// Exact word-length search by best-first branch-and-bound.
///
/// Variables are fixed one at a time in variable order; a search node is
/// a fixed prefix with every free variable relaxed to max_bits. Two
/// bounds prune the tree: the weighted-cost lower bound (fixed cost +
/// free variables at min_bits) against the incumbent, and a noise
/// feasibility bound — the noise of the relaxed assignment, which is the
/// least noise any completion of the prefix can reach because noise is
/// monotone non-increasing in bits. The feasibility bound is evaluated
/// with a cheap bound engine (the flat analyzer by default, the paper's
/// O(sources) baseline) while leaves are always scored with the probe
/// engine, so the returned incumbent is exact under the probe engine
/// regardless of the bound engine; the flat bound is itself exact
/// precisely where flat and psd agree (white, uncorrelated sources).
#pragma once

#include <cstddef>
#include <optional>

#include "core/accuracy_engine.hpp"
#include "opt/search/search_strategy.hpp"

namespace psdacc::opt::search {

/// Knobs for BranchAndBound.
struct BnbOptions {
  /// Cap on expanded nodes; on hitting it the search stops and returns
  /// the incumbent (exhausted() then reports false).
  std::size_t max_nodes = 100000;
  /// Feasibility-bound engine. Unset = the flat analyzer when it
  /// supports the graph (core::engine_supports), else the probe engine.
  std::optional<core::EngineKind> bound_engine;
};

/// Branch-and-bound statistics of the last run().
struct BnbStats {
  std::size_t nodes_expanded = 0;   ///< Nodes popped and branched.
  std::size_t pruned_cost = 0;      ///< Subtrees cut by the cost bound.
  std::size_t pruned_infeasible = 0;  ///< Subtrees cut by the noise bound.
  std::size_t bound_evaluations = 0;  ///< Bound-engine probes spent.
  /// True when the tree was searched to completion (the incumbent is the
  /// global optimum under the probe engine, given an admissible bound);
  /// false when max_nodes or cancellation stopped it early.
  bool exhausted = false;
};

class BranchAndBound : public SearchStrategy {
 public:
  explicit BranchAndBound(BnbOptions options = {}) : options_(options) {}
  std::string name() const override { return "bnb"; }
  OptimizerResult run(WordlengthOptimizer& opt) override;
  const BnbOptions& options() const { return options_; }
  const BnbStats& stats() const { return stats_; }

 private:
  BnbOptions options_;
  BnbStats stats_;
};

}  // namespace psdacc::opt::search
