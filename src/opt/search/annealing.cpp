#include "opt/search/annealing.hpp"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "support/random.hpp"

namespace psdacc::opt::search {

OptimizerResult SimulatedAnnealing::run(WordlengthOptimizer& opt) {
  trajectory_.clear();
  const OptimizerConfig& cfg = opt.config();
  // Greedy seed: feasible by construction whenever the budget is
  // reachable at all. If even all-max is infeasible there is nothing to
  // anneal inside the feasible region — return the seed verdict as-is.
  OptimizerResult seed = opt.greedy_descent();
  if (!seed.feasible || seed.cancelled) return seed;
  std::vector<int> current = seed.bits;
  double current_cost = seed.cost;
  double current_noise = seed.noise;
  std::vector<int> best = current;
  double best_cost = current_cost;
  trajectory_.push_back({0, current_cost, current_noise});

  const std::size_t n = opt.variable_count();
  const Xoshiro256 master(options_.seed);
  double temp = options_.initial_temp;
  for (std::size_t round = 1; round <= options_.rounds; ++round) {
    if (opt.cancel_requested()) return opt.cancelled_result(std::move(best));
    // The round's whole random stream is substream(round) of the master:
    // proposal generation and acceptance draws restart from a state that
    // depends only on (seed, round), never on scheduling or on how many
    // draws earlier rounds consumed.
    Xoshiro256 rng = master.substream(round);
    std::vector<WordlengthOptimizer::Candidate> proposals;
    proposals.reserve(options_.proposals_per_round);
    for (std::size_t k = 0; k < options_.proposals_per_round; ++k) {
      const auto v = static_cast<std::size_t>(rng.below(n));
      const int dir = rng.below(2) == 0 ? -1 : 1;
      const int bits =
          std::clamp(current[v] + dir, cfg.min_bits, cfg.max_bits);
      if (bits == current[v]) continue;  // clamped no-op; draws stand
      proposals.push_back({v, bits});
    }
    // Speculative parallel probing: all proposals score against the
    // *same* baseline concurrently. The serial scan below accepts the
    // first winner in proposal order and discards the rest of the round
    // as stale — exactly what a serial annealer restarted at the next
    // round would have done.
    const std::vector<double> noise = opt.probe_candidates(current, proposals);
    for (std::size_t i = 0; i < proposals.size(); ++i) {
      if (!(noise[i] <= cfg.noise_budget)) continue;  // infeasible / NaN
      const WordlengthOptimizer::Candidate& p = proposals[i];
      const double delta = opt.cost_weight(p.v) * (p.bits - current[p.v]);
      // Metropolis on the *cost* delta; the acceptance draw is consumed
      // only for uphill moves, in scan order — deterministic because the
      // scan order is.
      if (delta > 0.0 && !(rng.uniform() < std::exp(-delta / temp)))
        continue;
      current[p.v] = p.bits;
      current_cost += delta;
      current_noise = noise[i];
      trajectory_.push_back({round, current_cost, current_noise});
      if (current_cost < best_cost) {
        best = current;
        best_cost = current_cost;
      }
      break;
    }
    temp *= options_.cooling;
  }
  return opt.package_result(std::move(best));
}

OptimizerResult TabuSearch::run(WordlengthOptimizer& opt) {
  trajectory_.clear();
  const OptimizerConfig& cfg = opt.config();
  OptimizerResult seed = opt.greedy_descent();
  if (!seed.feasible || seed.cancelled) return seed;
  std::vector<int> current = seed.bits;
  double current_cost = seed.cost;
  std::vector<int> best = current;
  double best_cost = current_cost;
  trajectory_.push_back({0, current_cost, seed.noise});

  const std::size_t n = opt.variable_count();
  // Expiry round per directed move: slot 2v is "decrease v", 2v+1 is
  // "increase v". A move is tabu while its slot's round is still ahead.
  std::vector<std::size_t> tabu_until(2 * n, 0);
  for (std::size_t round = 1; round <= options_.rounds; ++round) {
    if (opt.cancel_requested()) return opt.cancelled_result(std::move(best));
    std::vector<WordlengthOptimizer::Candidate> moves;
    moves.reserve(2 * n);
    for (std::size_t v = 0; v < n; ++v) {
      if (current[v] - 1 >= cfg.min_bits) moves.push_back({v, current[v] - 1});
      if (current[v] + 1 <= cfg.max_bits) moves.push_back({v, current[v] + 1});
    }
    if (moves.empty()) break;
    const std::vector<double> noise = opt.probe_candidates(current, moves);
    // Best admissible neighbor, even a worsening one. Ties keep the first
    // in move order (ascending variable, decrease before increase).
    std::size_t chosen = moves.size();
    double chosen_cost = 0.0;
    for (std::size_t i = 0; i < moves.size(); ++i) {
      if (!(noise[i] <= cfg.noise_budget)) continue;
      const WordlengthOptimizer::Candidate& m = moves[i];
      const std::size_t slot = 2 * m.v + (m.bits > current[m.v] ? 1 : 0);
      const double cost =
          current_cost + opt.cost_weight(m.v) * (m.bits - current[m.v]);
      if (tabu_until[slot] >= round && !(cost < best_cost))
        continue;  // tabu, and no aspiration
      if (chosen == moves.size() || cost < chosen_cost) {
        chosen = i;
        chosen_cost = cost;
      }
    }
    if (chosen == moves.size()) break;  // neighborhood exhausted
    const WordlengthOptimizer::Candidate& m = moves[chosen];
    const bool increased = m.bits > current[m.v];
    // Forbid undoing this move for `tenure` rounds.
    tabu_until[2 * m.v + (increased ? 0 : 1)] = round + options_.tenure;
    current[m.v] = m.bits;
    current_cost = chosen_cost;
    trajectory_.push_back({round, current_cost, noise[chosen]});
    if (current_cost < best_cost) {
      best = current;
      best_cost = current_cost;
    }
  }
  return opt.package_result(std::move(best));
}

}  // namespace psdacc::opt::search
