#include "opt/search/strategies.hpp"

#include <stdexcept>

namespace psdacc::opt::search {

bool known_strategy(const std::string& name) {
  return name == "uniform" || name == "greedy" || name == "min_plus_one" ||
         name == "anneal" || name == "tabu" || name == "bnb";
}

OptimizerResult run_strategy(WordlengthOptimizer& opt,
                             const StrategySpec& spec) {
  if (spec.name == "uniform") return opt.uniform();
  if (spec.name == "greedy") return opt.greedy_descent();
  if (spec.name == "min_plus_one") return opt.min_plus_one();
  if (spec.name == "anneal") return SimulatedAnnealing(spec.anneal).run(opt);
  if (spec.name == "tabu") return TabuSearch(spec.tabu).run(opt);
  if (spec.name == "bnb") return BranchAndBound(spec.bnb).run(opt);
  throw std::invalid_argument("unknown search strategy: " + spec.name);
}

}  // namespace psdacc::opt::search
