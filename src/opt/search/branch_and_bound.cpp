#include "opt/search/branch_and_bound.hpp"

#include <limits>
#include <queue>
#include <utility>
#include <vector>

#include "sfg/graph.hpp"

namespace psdacc::opt::search {
namespace {

// A fixed prefix of the variable vector; everything past `depth` is
// relaxed (max_bits for the noise bound, min_bits for the cost bound).
struct Node {
  double cost_lb = 0.0;
  std::size_t depth = 0;
  std::vector<int> fixed;  // `depth` entries
  std::uint64_t seq = 0;   // insertion order, the deterministic tie-break
};

struct NodeOrder {
  // Min-heap on (cost_lb, seq): best-first, FIFO among equal bounds so
  // the expansion order is a pure function of the inputs.
  bool operator()(const Node& a, const Node& b) const {
    if (a.cost_lb != b.cost_lb) return a.cost_lb > b.cost_lb;
    return a.seq > b.seq;
  }
};

}  // namespace

OptimizerResult BranchAndBound::run(WordlengthOptimizer& opt) {
  trajectory_.clear();
  stats_ = {};
  const OptimizerConfig& cfg = opt.config();
  const std::size_t n = opt.variable_count();

  // Incumbent from greedy descent: a feasible upper bound that lets the
  // cost prune bite from the first expansion.
  OptimizerResult incumbent = opt.greedy_descent();
  if (incumbent.cancelled) return incumbent;
  std::vector<int> best = incumbent.bits;
  double incumbent_cost = incumbent.feasible
                              ? incumbent.cost
                              : std::numeric_limits<double>::infinity();
  trajectory_.push_back({0, incumbent.cost, incumbent.noise});
  if (!incumbent.feasible) {
    // Even all-max breaks the budget (greedy starts there): every subtree
    // fails the same relaxed feasibility bound, so don't bother growing
    // the tree — report the infeasible verdict like the other strategies.
    stats_.exhausted = true;
    return opt.package_result(std::move(best));
  }

  // Feasibility bound oracle: a serial optimizer over a private copy of
  // the graph, scored by the bound engine (NodeIds are indices, so the
  // variable ids stay valid in the copy). Leaves never go through it —
  // only the relaxed-prefix bound does.
  const core::EngineKind bound_kind = options_.bound_engine.value_or(
      core::engine_supports(core::EngineKind::kFlat, opt.graph())
          ? core::EngineKind::kFlat
          : cfg.engine);
  sfg::Graph bound_graph = opt.graph();
  OptimizerConfig bound_cfg = cfg;
  bound_cfg.engine = bound_kind;
  bound_cfg.pool = nullptr;
  bound_cfg.workers = 1;
  bound_cfg.cancel_check = nullptr;
  WordlengthOptimizer bound_opt(bound_graph, opt.variables(), bound_cfg);

  const auto relaxed_noise = [&](const std::vector<int>& fixed) {
    std::vector<int> bits(n, cfg.max_bits);
    std::copy(fixed.begin(), fixed.end(), bits.begin());
    ++stats_.bound_evaluations;
    return bound_opt.probe_assignment(bits);
  };

  std::priority_queue<Node, std::vector<Node>, NodeOrder> open;
  std::uint64_t seq = 0;
  double root_lb = 0.0;
  for (std::size_t v = 0; v < n; ++v)
    root_lb += opt.cost_weight(v) * cfg.min_bits;
  open.push({root_lb, 0, {}, seq++});

  while (!open.empty()) {
    if (opt.cancel_requested()) return opt.cancelled_result(std::move(best));
    if (stats_.nodes_expanded >= options_.max_nodes) break;
    Node node = open.top();
    open.pop();
    // The incumbent may have tightened since this node was pushed.
    if (node.cost_lb >= incumbent_cost) {
      ++stats_.pruned_cost;
      continue;
    }
    ++stats_.nodes_expanded;
    const std::size_t v = node.depth;
    for (int b = cfg.min_bits; b <= cfg.max_bits; ++b) {
      const double child_lb =
          node.cost_lb + opt.cost_weight(v) * (b - cfg.min_bits);
      if (child_lb >= incumbent_cost) {
        ++stats_.pruned_cost;
        continue;
      }
      std::vector<int> fixed = node.fixed;
      fixed.push_back(b);
      if (node.depth + 1 == n) {
        // Leaf: score with the probe engine, never the bound engine —
        // incumbents are exact by construction.
        const double noise = opt.probe_assignment(fixed);
        if (!(noise <= cfg.noise_budget)) {
          ++stats_.pruned_infeasible;
          continue;
        }
        best = std::move(fixed);
        incumbent_cost = child_lb;  // at a leaf the bound is the cost
        trajectory_.push_back(
            {stats_.nodes_expanded, incumbent_cost, noise});
        continue;
      }
      // Least achievable noise of any completion: the prefix with every
      // free variable at max_bits (noise is monotone non-increasing in
      // bits). If even that breaks the budget, the subtree is dead.
      if (!(relaxed_noise(fixed) <= cfg.noise_budget)) {
        ++stats_.pruned_infeasible;
        continue;
      }
      open.push({child_lb, node.depth + 1, std::move(fixed), seq++});
    }
  }
  stats_.exhausted = open.empty();
  return opt.package_result(std::move(best));
}

}  // namespace psdacc::opt::search
