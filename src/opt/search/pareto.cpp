#include "opt/search/pareto.hpp"

#include <algorithm>
#include <atomic>
#include <charconv>
#include <cmath>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "support/assert.hpp"
#include "support/table.hpp"

namespace psdacc::opt::search {
namespace {

// Shortest round-trip double, the same emission rule the serializer and
// the serve protocol use — sweeps must be diffable against both.
void append_double(std::string& out, double v) {
  char buf[64];
  const auto r = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, r.ptr);
}

void append_bits(std::string& out, const std::vector<int>& bits) {
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (i != 0) out.push_back('|');
    out.append(std::to_string(bits[i]));
  }
}

// a dominates b: at least as good on both axes, strictly better on one.
bool dominates(const ParetoPoint& a, const ParetoPoint& b) {
  return a.cost <= b.cost && a.noise <= b.noise &&
         (a.cost < b.cost || a.noise < b.noise);
}

}  // namespace

std::vector<double> log_spaced_budgets(double lo, double hi,
                                       std::size_t points) {
  if (!(lo > 0.0) || !(lo <= hi) || points == 0)
    throw std::invalid_argument(
        "log_spaced_budgets: need 0 < lo <= hi and points >= 1");
  std::vector<double> budgets;
  budgets.reserve(points);
  if (points == 1) {
    budgets.push_back(lo);
    return budgets;
  }
  const double step = (std::log(hi) - std::log(lo)) / (points - 1);
  for (std::size_t i = 0; i < points; ++i)
    budgets.push_back(std::exp(std::log(lo) + step * i));
  // Endpoints exact: the geometric interior may round, the rails do not.
  budgets.front() = lo;
  budgets.back() = hi;
  return budgets;
}

std::string points_to_csv(const std::vector<ParetoPoint>& points) {
  std::string out = "budget,cost,noise,feasible,evaluations,bits\n";
  for (const ParetoPoint& p : points) {
    append_double(out, p.budget);
    out.push_back(',');
    append_double(out, p.cost);
    out.push_back(',');
    append_double(out, p.noise);
    out.push_back(',');
    out.push_back(p.feasible ? '1' : '0');
    out.push_back(',');
    out.append(std::to_string(p.evaluations));
    out.push_back(',');
    append_bits(out, p.bits);
    out.push_back('\n');
  }
  return out;
}

ParetoFront ParetoFront::from_points(const std::vector<ParetoPoint>& points) {
  std::vector<ParetoPoint> kept;
  for (const ParetoPoint& p : points)
    if (p.feasible && !p.cancelled) kept.push_back(p);
  // Stable sort keeps ladder order among exact (cost, noise) duplicates,
  // so the surviving representative of a duplicate group is always the
  // lowest-budget one.
  std::stable_sort(kept.begin(), kept.end(),
                   [](const ParetoPoint& a, const ParetoPoint& b) {
                     if (a.cost != b.cost) return a.cost < b.cost;
                     return a.noise < b.noise;
                   });
  ParetoFront front;
  double min_noise = std::numeric_limits<double>::infinity();
  for (ParetoPoint& p : kept) {
    // Sorted by ascending cost: p survives iff it strictly improves the
    // best noise seen so far — anything else is dominated (or an exact
    // duplicate) of a cheaper point.
    if (!(p.noise < min_noise)) continue;
    min_noise = p.noise;
    front.points_.push_back(std::move(p));
  }
  return front;
}

bool ParetoFront::dominance_consistent() const {
  for (std::size_t i = 0; i < points_.size(); ++i)
    for (std::size_t j = 0; j < points_.size(); ++j)
      if (i != j && dominates(points_[i], points_[j])) return false;
  return true;
}

std::string ParetoFront::to_table() const {
  TextTable table({"budget", "cost", "noise", "evals", "bits"});
  for (const ParetoPoint& p : points_) {
    std::string bits;
    append_bits(bits, p.bits);
    table.add_row({TextTable::num(p.budget), TextTable::num(p.cost),
                   TextTable::num(p.noise), std::to_string(p.evaluations),
                   bits});
  }
  return table.render();
}

ParetoSweep::ParetoSweep(const sfg::Graph& g,
                         std::vector<sfg::NodeId> variables, SweepConfig cfg)
    : graph_(g), variables_(std::move(variables)), cfg_(std::move(cfg)) {
  PSDACC_EXPECTS(!variables_.empty());
  budgets_ = cfg_.budgets.empty()
                 ? log_spaced_budgets(cfg_.budget_lo, cfg_.budget_hi,
                                      cfg_.points)
                 : cfg_.budgets;
  PSDACC_EXPECTS(!budgets_.empty());
}

std::vector<ParetoPoint> ParetoSweep::run_points() {
  if (cfg_.pool != nullptr) return run_on(*cfg_.pool);
  runtime::ThreadPool pool(cfg_.workers);
  return run_on(pool);
}

std::vector<ParetoPoint> ParetoSweep::run_points(
    runtime::BatchRunner& runner) {
  return run_on(runner.pool());
}

std::vector<ParetoPoint> ParetoSweep::run_on(runtime::ThreadPool& pool) {
  // With real fan-out the budget point is the unit of parallelism: each
  // point's optimizer runs serially on a private clone, which keeps the
  // whole sweep bit-identical to the 1-worker run (and avoids nesting
  // parallel probe rounds inside pool tasks). A serial sweep leaves the
  // base config's own workers/pool in charge of inner probe concurrency.
  const bool fan_out = pool.workers() > 1;
  std::mutex mutex;  // counters_ accumulation + on_point serialization
  std::atomic<bool> stop{false};
  return pool.parallel_map(budgets_.size(), [&](std::size_t i) {
    ParetoPoint p;
    p.budget = budgets_[i];
    if (stop.load(std::memory_order_relaxed) ||
        (cfg_.base.cancel_check && cfg_.base.cancel_check())) {
      p.cancelled = true;
      return p;
    }
    sfg::Graph clone = graph_;
    OptimizerConfig point_cfg = cfg_.base;
    point_cfg.noise_budget = budgets_[i];
    if (fan_out) {
      point_cfg.workers = 1;
      point_cfg.pool = nullptr;
    }
    WordlengthOptimizer opt(clone, variables_, point_cfg);
    OptimizerResult r = run_strategy(opt, cfg_.strategy);
    p.cost = r.cost;
    p.noise = r.noise;
    p.feasible = r.feasible;
    p.cancelled = r.cancelled;
    p.evaluations = r.evaluations;
    p.bits = std::move(r.bits);
    if (p.cancelled) stop.store(true, std::memory_order_relaxed);
    const auto c = opt.probe_counters();
    std::lock_guard lock(mutex);
    counters_.full += c.full;
    counters_.cached += c.cached;
    counters_.delta += c.delta;
    if (cfg_.on_point) cfg_.on_point(i, p);
    return p;
  });
}

core::AccuracyEngine::EvalCounters ParetoSweep::probe_counters() const {
  return counters_;
}

}  // namespace psdacc::opt::search
