/// @file strategies.hpp
/// Strategy-by-name dispatch shared by the Pareto sweep, the psdacc-opt
/// CLI, the serve layer's optimizer/sweep jobs, and the corpus optimizer
/// goldens — one token vocabulary everywhere.
#pragma once

#include <string>

#include "opt/search/annealing.hpp"
#include "opt/search/branch_and_bound.hpp"
#include "opt/search/search_strategy.hpp"

namespace psdacc::opt::search {

/// A strategy selection plus every strategy's knobs (only the selected
/// one's are read). Tokens: "uniform", "greedy", "min_plus_one" (the
/// WordlengthOptimizer built-ins), "anneal", "tabu", "bnb".
struct StrategySpec {
  std::string name = "greedy";
  AnnealOptions anneal;
  TabuOptions tabu;
  BnbOptions bnb;
};

/// True when @p name is one of the dispatchable strategy tokens.
bool known_strategy(const std::string& name);

/// Runs the named strategy on @p opt.
/// @throws std::invalid_argument on an unknown name
OptimizerResult run_strategy(WordlengthOptimizer& opt,
                             const StrategySpec& spec);

}  // namespace psdacc::opt::search
