/// @file pareto.hpp
/// Pareto-front sweeps: the paper's cost-vs-accuracy trade-off curves as
/// a first-class product.
///
/// A ParetoSweep runs one full word-length optimization per noise budget
/// on a ladder (log-spaced or user-supplied), fanned out across budget
/// points on a thread pool / runtime::BatchRunner with a private graph
/// clone per point — so the points are independent jobs and the sweep is
/// bit-identical for any fan-out width. The resulting (cost, noise)
/// points are deduplicated and dominance-filtered into a ParetoFront
/// with canonical CSV and table emission mirroring the paper's figures.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "core/accuracy_engine.hpp"
#include "opt/search/strategies.hpp"
#include "opt/wordlength_optimizer.hpp"
#include "runtime/batch_runner.hpp"
#include "runtime/thread_pool.hpp"
#include "sfg/graph.hpp"

namespace psdacc::opt::search {

/// Log-spaced budget ladder from @p lo up to @p hi inclusive (endpoints
/// exact; interior points geometric). points == 1 yields {lo}.
/// @throws std::invalid_argument unless 0 < lo <= hi and points >= 1
std::vector<double> log_spaced_budgets(double lo, double hi,
                                       std::size_t points);

/// One optimizer run of a sweep: the budget it ran under and the
/// assignment it found.
struct ParetoPoint {
  double budget = 0.0;          ///< The ladder's noise budget.
  double cost = 0.0;            ///< Weighted bit cost achieved.
  double noise = 0.0;           ///< Achieved output noise power.
  bool feasible = false;        ///< noise <= budget.
  bool cancelled = false;       ///< Point cut short (or skipped) by cancel.
  std::size_t evaluations = 0;  ///< Engine evaluations this point spent.
  std::vector<int> bits;        ///< Per-variable assignment.
};

/// Canonical CSV of sweep points, one row per point in ladder order.
/// Schema: `budget,cost,noise,feasible,evaluations,bits` — doubles in
/// shortest round-trip form, feasible as 0/1, bits pipe-joined ("8|7|9").
std::string points_to_csv(const std::vector<ParetoPoint>& points);

/// The dominance-filtered trade-off curve. Only feasible, uncancelled
/// points enter; duplicates collapse; a point survives iff no other kept
/// point is at least as good on both axes and strictly better on one.
class ParetoFront {
 public:
  static ParetoFront from_points(const std::vector<ParetoPoint>& points);
  /// Surviving points, sorted by ascending cost (noise descends).
  const std::vector<ParetoPoint>& points() const { return points_; }
  /// True when no kept point dominates another — the invariant
  /// from_points establishes, re-checkable by tests and tools.
  bool dominance_consistent() const;
  /// Same schema as points_to_csv, restricted to the front.
  std::string to_csv() const { return points_to_csv(points_); }
  /// Human-readable table (support::TextTable) of the front.
  std::string to_table() const;

 private:
  std::vector<ParetoPoint> points_;
};

/// Sweep configuration. The ladder is `budgets` when non-empty, else
/// log_spaced_budgets(budget_lo, budget_hi, points).
struct SweepConfig {
  std::vector<double> budgets;  ///< Explicit ladder (overrides lo/hi).
  double budget_lo = 1e-10;
  double budget_hi = 1e-4;
  std::size_t points = 8;
  /// Per-point optimizer configuration; noise_budget is overwritten with
  /// the ladder value. When the sweep fans out (workers > 1 or an
  /// external pool/runner), each point's optimizer is forced serial
  /// (workers=1, no pool) — points are the unit of parallelism then.
  OptimizerConfig base;
  StrategySpec strategy;
  /// Fan-out across budget points (1 = serial, in ladder order).
  std::size_t workers = 1;
  runtime::ThreadPool* pool = nullptr;  ///< Overrides `workers` when set.
  /// Completion callback, invoked once per finished point (serialized
  /// under a mutex). With serial fan-out the calls arrive in ladder
  /// order — what the serve layer's per-point PROG frames rely on; with
  /// parallel fan-out the order is completion order.
  std::function<void(std::size_t index, const ParetoPoint&)> on_point;
};

/// Runs one optimizer per budget point over private clones of a graph.
class ParetoSweep {
 public:
  /// @param g         the system; never mutated (each point clones it)
  /// @param variables free word-length variables, as WordlengthOptimizer
  /// @param cfg       ladder, per-point optimizer base, strategy, fan-out
  ParetoSweep(const sfg::Graph& g, std::vector<sfg::NodeId> variables,
              SweepConfig cfg);

  /// The resolved budget ladder, in sweep order.
  const std::vector<double>& budgets() const { return budgets_; }
  /// Runs every point and returns them in ladder order (bit-identical
  /// for any fan-out). Points after a cancellation are marked cancelled
  /// with empty bits. Repeated calls re-run the sweep.
  std::vector<ParetoPoint> run_points();
  /// run_points() fanned out on @p runner's pool.
  std::vector<ParetoPoint> run_points(runtime::BatchRunner& runner);
  /// Probe-counter totals aggregated over every point's optimizer since
  /// construction — delta vs full vs cached, summed in completion order
  /// (order-independent: they are plain sums).
  core::AccuracyEngine::EvalCounters probe_counters() const;

 private:
  std::vector<ParetoPoint> run_on(runtime::ThreadPool& pool);
  const sfg::Graph& graph_;
  std::vector<sfg::NodeId> variables_;
  SweepConfig cfg_;
  std::vector<double> budgets_;
  core::AccuracyEngine::EvalCounters counters_{};
};

}  // namespace psdacc::opt::search
