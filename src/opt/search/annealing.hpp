/// @file annealing.hpp
/// Stochastic global strategies: simulated annealing and tabu search.
///
/// Both strategies move through the feasible region of word-length
/// vectors by ±1-bit neighbor steps, seeded from greedy descent, and
/// score every proposal through WordlengthOptimizer::probe_candidates —
/// so one round's proposals probe concurrently on the delta path while
/// acceptance stays a serial, deterministic scan.
#pragma once

#include <cstddef>
#include <cstdint>

#include "opt/search/search_strategy.hpp"

namespace psdacc::opt::search {

/// Knobs for SimulatedAnnealing. The defaults are sized for the corpus
/// systems (tens of variables); determinism holds for any values.
struct AnnealOptions {
  /// Master RNG seed. Round r draws from Xoshiro256(seed).substream(r),
  /// so the proposal/acceptance stream of a round is a pure function of
  /// (seed, round) — independent of worker count and of how many draws
  /// earlier rounds consumed.
  std::uint64_t seed = 0x9e3779b97f4a7c15ull;
  std::size_t rounds = 200;  ///< Cooling steps (one probe round each).
  /// Speculative proposals probed per round. A config knob, not a worker
  /// count: the same proposals are generated and scanned in the same
  /// order whether they were probed on 1 thread or 16, which is what
  /// keeps 1-vs-N results bit-identical. The first accepted proposal in
  /// scan order wins; later ones are discarded as stale.
  std::size_t proposals_per_round = 8;
  /// Initial temperature in weighted-cost units (a +1-bit move on a
  /// weight-1 variable has cost delta 1).
  double initial_temp = 4.0;
  double cooling = 0.97;  ///< Geometric temperature decay per round.
};

/// Simulated annealing over word-length vectors, constrained to the
/// feasible region (proposals that break the noise budget are rejected
/// outright; uphill *cost* moves are accepted with the Metropolis
/// probability). Seeded from greedy_descent; returns the best feasible
/// assignment ever visited. If even the all-max assignment is infeasible
/// the greedy seed (infeasible, at max bits) is returned unchanged.
class SimulatedAnnealing : public SearchStrategy {
 public:
  explicit SimulatedAnnealing(AnnealOptions options = {})
      : options_(options) {}
  std::string name() const override { return "anneal"; }
  OptimizerResult run(WordlengthOptimizer& opt) override;
  const AnnealOptions& options() const { return options_; }

 private:
  AnnealOptions options_;
};

/// Knobs for TabuSearch.
struct TabuOptions {
  std::size_t rounds = 64;  ///< Neighborhood sweeps.
  /// Rounds a reversed move stays forbidden after being applied.
  std::size_t tenure = 8;
};

/// Deterministic (RNG-free) tabu search: every round probes the full
/// ±1-bit neighborhood of the current assignment concurrently, then takes
/// the cheapest feasible non-tabu move — even a worsening one, which is
/// what walks it out of greedy's local minima — while the tabu list
/// forbids undoing recent moves for `tenure` rounds. Aspiration: a tabu
/// move that beats the best cost seen so far is always admissible.
class TabuSearch : public SearchStrategy {
 public:
  explicit TabuSearch(TabuOptions options = {}) : options_(options) {}
  std::string name() const override { return "tabu"; }
  OptimizerResult run(WordlengthOptimizer& opt) override;
  const TabuOptions& options() const { return options_; }

 private:
  TabuOptions options_;
};

}  // namespace psdacc::opt::search
