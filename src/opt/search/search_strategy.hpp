/// @file search_strategy.hpp
/// Uniform interface over the global word-length search strategies.
///
/// A SearchStrategy drives a WordlengthOptimizer through its batch-probe
/// surface (probe_candidates / probe_assignment / package_result) instead
/// of the built-in greedy heuristics. Everything the optimizer guarantees
/// carries over unchanged: probes score on isolated per-worker contexts,
/// take the engine's delta path where available, feed probe_counters(),
/// poll OptimizerConfig::cancel_check between rounds, and are
/// bit-identical for any worker count. The strategies themselves add the
/// global part — stochastic escape (SimulatedAnnealing), deterministic
/// memory (TabuSearch), and exhaustive pruned enumeration
/// (BranchAndBound).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "opt/wordlength_optimizer.hpp"

namespace psdacc::opt::search {

/// One accepted move on a search trajectory. Trajectories are part of the
/// determinism contract: for a fixed seed they are bit-identical across
/// worker counts and probe engines' delta/full settings.
struct TrajectoryPoint {
  std::size_t round = 0;  ///< Probe round the move was accepted in.
  double cost = 0.0;      ///< Weighted bit cost after the move.
  double noise = 0.0;     ///< Probed output noise after the move.
};

/// Interface every global strategy implements. A strategy object is
/// single-shot state plus options: run() may be called repeatedly (each
/// call restarts the search and replaces the trajectory).
class SearchStrategy {
 public:
  virtual ~SearchStrategy() = default;
  /// Canonical strategy name ("anneal", "tabu", "bnb") — the token the
  /// CLI, the serve envelope, and corpus optimizer goldens dispatch on.
  virtual std::string name() const = 0;
  /// Runs the search on @p opt and returns the best assignment found,
  /// packaged via WordlengthOptimizer::package_result (so the graph holds
  /// the returned assignment and the result carries re-evaluated noise).
  virtual OptimizerResult run(WordlengthOptimizer& opt) = 0;
  /// Accepted-move trace of the last run() (empty before the first).
  const std::vector<TrajectoryPoint>& trajectory() const {
    return trajectory_;
  }

 protected:
  std::vector<TrajectoryPoint> trajectory_;
};

}  // namespace psdacc::opt::search
