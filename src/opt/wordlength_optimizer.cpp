#include "opt/wordlength_optimizer.hpp"

#include <algorithm>
#include <utility>

#include "fixedpoint/noise_model.hpp"
#include "support/assert.hpp"

namespace psdacc::opt {
namespace {

// Sets the fractional bits of a word-length variable node. Reads through
// the const accessor first and stamps via Graph::set_format only on a real
// change: an unchanged stamp must not bump the graph's revision counters,
// or re-stamping a recycled probe context would needlessly invalidate its
// engine's cached per-source contributions and power memo.
void set_bits(sfg::Graph& g, sfg::NodeId id, int bits) {
  const sfg::NodeView node = g.node(id);
  if (const auto* q = std::get_if<sfg::QuantizerNode>(&node.payload)) {
    auto format = q->format;
    format.fractional_bits = bits;
    const auto moments = fxp::continuous_quantization_noise(format);
    // Moments are compared too, not just bits: a quantizer built with
    // caller-supplied moments must still have them replaced by the derived
    // PQN moments the first time the optimizer touches it, exactly as the
    // unconditional assignment always did.
    if (q->format == format && q->moments.mean == moments.mean &&
        q->moments.variance == moments.variance)
      return;
    g.set_format(id, format);
    return;
  }
  if (const auto* b = std::get_if<sfg::BlockNode>(&node.payload)) {
    PSDACC_EXPECTS(b->output_format.has_value());
    if (b->output_format->fractional_bits == bits) return;
    auto format = *b->output_format;
    format.fractional_bits = bits;
    g.set_format(id, format);
    return;
  }
  PSDACC_EXPECTS(false && "variable must be a quantizer or quantized block");
}

// The format a word-length assignment of `bits` would install at `id` —
// what AccuracyEngine::evaluate_delta needs to probe hypothetically.
fxp::FixedPointFormat candidate_format(const sfg::Graph& g, sfg::NodeId id,
                                       int bits) {
  const sfg::NodeView node = g.node(id);
  fxp::FixedPointFormat format;
  if (const auto* q = std::get_if<sfg::QuantizerNode>(&node.payload)) {
    format = q->format;
  } else {
    const auto* b = std::get_if<sfg::BlockNode>(&node.payload);
    PSDACC_EXPECTS(b != nullptr && b->output_format.has_value());
    format = *b->output_format;
  }
  format.fractional_bits = bits;
  return format;
}

}  // namespace

// Checks a ProbeContext out of the optimizer's free list for the duration
// of one probe; contexts are created on demand, so at most one per
// concurrently running probe ever exists.
class WordlengthOptimizer::ContextLease {
 public:
  explicit ContextLease(WordlengthOptimizer& opt) : opt_(opt) {
    {
      std::lock_guard lock(opt_.contexts_mutex_);
      if (!opt_.free_contexts_.empty()) {
        context_ = std::move(opt_.free_contexts_.back());
        opt_.free_contexts_.pop_back();
      }
    }
    // Construct outside the lock: cloning the graph and preprocessing the
    // engine is the expensive part, and serializing it would stall every
    // worker's first probe. Concurrent construction only reads opt_.graph_
    // and the prototype engine's options.
    if (context_ == nullptr)
      context_ =
          std::make_unique<ProbeContext>(opt_.graph_, *opt_.engine_);
  }
  ~ContextLease() {
    std::lock_guard lock(opt_.contexts_mutex_);
    opt_.free_contexts_.push_back(std::move(context_));
  }

  ProbeContext& operator*() { return *context_; }
  ProbeContext* operator->() { return context_.get(); }

 private:
  WordlengthOptimizer& opt_;
  std::unique_ptr<ProbeContext> context_;
};

WordlengthOptimizer::WordlengthOptimizer(sfg::Graph& g,
                                         std::vector<sfg::NodeId> variables,
                                         OptimizerConfig cfg)
    : graph_(g),
      variables_(std::move(variables)),
      cfg_(cfg),
      engine_([&] {
        core::EngineOptions opts = cfg.engine_opts;
        opts.n_psd = cfg.n_psd;  // the one resolution knob drivers set
        return core::make_engine(cfg.engine, g, opts);
      }()),
      owned_pool_(cfg.pool != nullptr
                      ? nullptr
                      : std::make_unique<runtime::ThreadPool>(cfg.workers)),
      pool_(cfg.pool != nullptr ? cfg.pool : owned_pool_.get()) {
  PSDACC_EXPECTS(!variables_.empty());
  PSDACC_EXPECTS(cfg_.min_bits >= 1 && cfg_.min_bits <= cfg_.max_bits);
  PSDACC_EXPECTS(cfg_.cost_weights.empty() ||
                 cfg_.cost_weights.size() == variables_.size());
  delta_probes_ = cfg_.incremental && engine_->capabilities().delta;
  // Before any probe context clones the graph: integer bits sized here are
  // inherited by every clone, so probes only ever vary fractional bits.
  ensure_integer_bits();
}

WordlengthOptimizer::~WordlengthOptimizer() = default;

double WordlengthOptimizer::weight(std::size_t v) const {
  return cfg_.cost_weights.empty() ? 1.0 : cfg_.cost_weights[v];
}

void WordlengthOptimizer::ensure_integer_bits() {
  if (!cfg_.input_range.has_value()) return;
  if (ranges_topology_ == graph_.topology_revision()) return;
  // One range-analysis pass per topology: the bounds depend only on the
  // structure and coefficients, never on the fractional bits the search
  // sweeps, so repeated evaluate()/apply() calls stay cache-warm.
  const auto ranges = core::analyze_ranges(graph_, *cfg_.input_range);
  for (const sfg::NodeId id : variables_) {
    const int integer_bits = core::required_integer_bits(ranges[id]);
    const sfg::NodeView node = graph_.node(id);
    if (const auto* q = std::get_if<sfg::QuantizerNode>(&node.payload)) {
      if (q->format.integer_bits != integer_bits) {
        auto format = q->format;
        format.integer_bits = integer_bits;
        graph_.set_format(id, format);
      }
    } else {
      const auto* b = std::get_if<sfg::BlockNode>(&node.payload);
      PSDACC_EXPECTS(b != nullptr && b->output_format.has_value());
      if (b->output_format->integer_bits != integer_bits) {
        auto format = *b->output_format;
        format.integer_bits = integer_bits;
        graph_.set_format(id, format);
      }
    }
  }
  ranges_topology_ = graph_.topology_revision();
}

void WordlengthOptimizer::apply(const std::vector<int>& bits) {
  PSDACC_EXPECTS(bits.size() == variables_.size());
  ensure_integer_bits();
  for (std::size_t v = 0; v < variables_.size(); ++v)
    set_bits(graph_, variables_[v], bits[v]);
}

double WordlengthOptimizer::evaluate() {
  ensure_integer_bits();
  ++evaluations_;
  return engine_->output_noise_power();
}

core::AccuracyEngine::EvalCounters WordlengthOptimizer::probe_counters()
    const {
  std::lock_guard lock(contexts_mutex_);
  core::AccuracyEngine::EvalCounters total = engine_->eval_counters();
  for (const auto& context : free_contexts_) {
    const auto& c = context->engine->eval_counters();
    total.full += c.full;
    total.cached += c.cached;
    total.delta += c.delta;
  }
  return total;
}

double WordlengthOptimizer::probe(const std::vector<int>& bits,
                                  std::size_t v, int candidate_bits) {
  ContextLease context(*this);
  // Stamp the full assignment: a recycled context carries whatever the
  // previous probe left behind, so the probe result depends only on its
  // arguments — never on scheduling. set_bits early-outs on unchanged
  // variables, so within one search iteration a recycled context's
  // revision counters move only where the assignment really differs.
  for (std::size_t u = 0; u < variables_.size(); ++u)
    if (u != v) set_bits(context->graph, variables_[u], bits[u]);
  if (delta_probes_) {
    // Delta path: hold the context at the iteration's baseline and probe
    // the candidate hypothetically — the engine re-derives one source's
    // contribution and combines the rest from its cache.
    set_bits(context->graph, variables_[v], bits[v]);
    return context->engine->evaluate_delta(
        variables_[v],
        candidate_format(context->graph, variables_[v], candidate_bits));
  }
  set_bits(context->graph, variables_[v], candidate_bits);
  return context->engine->output_noise_power();
}

bool WordlengthOptimizer::cancel_requested() const {
  return cfg_.cancel_check && cfg_.cancel_check();
}

double WordlengthOptimizer::cost_of(const std::vector<int>& bits) const {
  PSDACC_EXPECTS(bits.size() == variables_.size());
  double cost = 0.0;
  for (std::size_t v = 0; v < bits.size(); ++v) cost += weight(v) * bits[v];
  return cost;
}

std::vector<double> WordlengthOptimizer::probe_candidates(
    const std::vector<int>& baseline,
    const std::vector<Candidate>& candidates) {
  PSDACC_EXPECTS(baseline.size() == variables_.size());
  ensure_integer_bits();
  std::vector<double> noise(candidates.size());
  pool_->parallel_for(0, candidates.size(), [&](std::size_t i) {
    noise[i] = probe(baseline, candidates[i].v, candidates[i].bits);
  });
  evaluations_ += candidates.size();
  return noise;
}

double WordlengthOptimizer::probe_assignment(const std::vector<int>& bits) {
  PSDACC_EXPECTS(bits.size() == variables_.size());
  ensure_integer_bits();
  ContextLease context(*this);
  for (std::size_t u = 0; u < variables_.size(); ++u)
    set_bits(context->graph, variables_[u], bits[u]);
  ++evaluations_;
  return context->engine->output_noise_power();
}

OptimizerResult WordlengthOptimizer::cancelled_package(
    std::vector<int> bits) {
  OptimizerResult r = package(std::move(bits));
  r.cancelled = true;
  return r;
}

OptimizerResult WordlengthOptimizer::package(std::vector<int> bits) {
  apply(bits);
  OptimizerResult r;
  r.noise = evaluate();
  r.bits = std::move(bits);
  r.cost = 0.0;
  for (std::size_t v = 0; v < r.bits.size(); ++v)
    r.cost += weight(v) * r.bits[v];
  r.evaluations = evaluations_;
  r.feasible = r.noise <= cfg_.noise_budget;
  return r;
}

OptimizerResult WordlengthOptimizer::uniform() {
  for (int d = cfg_.min_bits; d <= cfg_.max_bits; ++d) {
    std::vector<int> bits(variables_.size(), d);
    if (cancel_requested()) return cancelled_package(std::move(bits));
    apply(bits);
    if (evaluate() <= cfg_.noise_budget) return package(std::move(bits));
  }
  return package(std::vector<int>(variables_.size(), cfg_.max_bits));
}

OptimizerResult WordlengthOptimizer::greedy_descent() {
  std::vector<int> bits(variables_.size(), cfg_.max_bits);
  apply(bits);
  double current = evaluate();
  if (current > cfg_.noise_budget)
    return package(std::move(bits));  // infeasible even at max
  std::vector<double> probe_noise(variables_.size());
  for (;;) {
    // Between rounds is the cancellation point: the bits vector holds the
    // best feasible assignment found so far — exactly the partial state a
    // timed-out server job should report.
    if (cancel_requested()) return cancelled_package(std::move(bits));
    // Score every candidate single-bit removal concurrently; each probe
    // runs on an isolated context, so the scores match the serial sweep
    // bit for bit.
    pool_->parallel_for(0, variables_.size(), [&](std::size_t v) {
      if (bits[v] <= cfg_.min_bits) return;
      probe_noise[v] = probe(bits, v, bits[v] - 1);
    });
    // Candidacy is decided by the bit bounds (the same guard the probe
    // loop used), never by the probe value: entries for non-candidates are
    // stale and must not be read.
    for (std::size_t v = 0; v < variables_.size(); ++v)
      if (bits[v] > cfg_.min_bits) ++evaluations_;

    // Deterministic selection: fixed variable order, same tie-breaking as
    // the serial loop (strictly-better score wins).
    std::size_t best = variables_.size();
    double best_score = 0.0;
    double best_noise = current;
    for (std::size_t v = 0; v < variables_.size(); ++v) {
      if (bits[v] <= cfg_.min_bits) continue;
      const double noise = probe_noise[v];
      // Negated form so a NaN probe is rejected, as in the serial loop's
      // `if (noise <= budget)`.
      if (!(noise <= cfg_.noise_budget)) continue;
      // Prefer the cheapest noise increase per unit cost saved: score on
      // the *marginal* increase over the current noise, not the absolute
      // level — the absolute level is dominated by the shared noise floor
      // and would rank candidates purely by weight.
      const double marginal = std::max(noise - current, 0.0);
      const double score = weight(v) / std::max(marginal, 1e-300);
      if (best == variables_.size() || score > best_score) {
        best = v;
        best_score = score;
        best_noise = noise;
      }
    }
    if (best == variables_.size()) break;
    --bits[best];
    current = best_noise;
  }
  return package(std::move(bits));
}

OptimizerResult WordlengthOptimizer::min_plus_one() {
  // Per-variable lower bound: the fewest bits for variable v with all
  // others at max (the standard "minimum word-length" initialization).
  // Each variable's scan is independent of the others, so they run
  // concurrently; the evaluation counts are summed in variable order.
  const std::vector<int> all_max(variables_.size(), cfg_.max_bits);
  std::vector<int> lower(variables_.size(), cfg_.min_bits);
  if (cancel_requested()) return cancelled_package(std::move(lower));
  std::vector<std::size_t> scan_evals(variables_.size(), 0);
  pool_->parallel_for(0, variables_.size(), [&](std::size_t v) {
    for (int d = cfg_.min_bits; d <= cfg_.max_bits; ++d) {
      ++scan_evals[v];
      if (probe(all_max, v, d) <= cfg_.noise_budget) {
        lower[v] = d;
        return;
      }
      lower[v] = cfg_.max_bits;
    }
  });
  for (std::size_t v = 0; v < variables_.size(); ++v)
    evaluations_ += scan_evals[v];

  // Start from the (usually infeasible) lower bounds and add the most
  // effective bit until feasible.
  std::vector<int> bits = lower;
  apply(bits);
  double noise = evaluate();
  std::vector<double> probe_noise(variables_.size());
  while (noise > cfg_.noise_budget) {
    if (cancel_requested()) return cancelled_package(std::move(bits));
    pool_->parallel_for(0, variables_.size(), [&](std::size_t v) {
      if (bits[v] >= cfg_.max_bits) return;
      probe_noise[v] = probe(bits, v, bits[v] + 1);
    });
    std::size_t best = variables_.size();
    double best_gain = 0.0;
    for (std::size_t v = 0; v < variables_.size(); ++v) {
      if (bits[v] >= cfg_.max_bits) continue;  // saturated, not probed
      ++evaluations_;
      const double gain = (noise - probe_noise[v]) / weight(v);
      if (best == variables_.size() || gain > best_gain) {
        best = v;
        best_gain = gain;
      }
    }
    if (best == variables_.size()) break;  // everything saturated
    ++bits[best];
    noise = probe_noise[best];  // the accepted probe already measured this
  }
  return package(std::move(bits));
}

}  // namespace psdacc::opt
