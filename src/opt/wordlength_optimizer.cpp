#include "opt/wordlength_optimizer.hpp"

#include <algorithm>

#include "fixedpoint/noise_model.hpp"
#include "support/assert.hpp"

namespace psdacc::opt {
namespace {

// Sets the fractional bits of a word-length variable node.
void set_bits(sfg::Graph& g, sfg::NodeId id, int bits) {
  sfg::Node& node = g.node(id);
  if (auto* q = std::get_if<sfg::QuantizerNode>(&node.payload)) {
    q->format.fractional_bits = bits;
    q->moments = fxp::continuous_quantization_noise(q->format);
    return;
  }
  if (auto* b = std::get_if<sfg::BlockNode>(&node.payload)) {
    PSDACC_EXPECTS(b->output_format.has_value());
    b->output_format->fractional_bits = bits;
    return;
  }
  PSDACC_EXPECTS(false && "variable must be a quantizer or quantized block");
}

}  // namespace

WordlengthOptimizer::WordlengthOptimizer(sfg::Graph& g,
                                         std::vector<sfg::NodeId> variables,
                                         OptimizerConfig cfg)
    : graph_(g),
      variables_(std::move(variables)),
      cfg_(cfg),
      analyzer_(g, {.n_psd = cfg.n_psd}) {
  PSDACC_EXPECTS(!variables_.empty());
  PSDACC_EXPECTS(cfg_.min_bits >= 1 && cfg_.min_bits <= cfg_.max_bits);
  PSDACC_EXPECTS(cfg_.cost_weights.empty() ||
                 cfg_.cost_weights.size() == variables_.size());
}

double WordlengthOptimizer::weight(std::size_t v) const {
  return cfg_.cost_weights.empty() ? 1.0 : cfg_.cost_weights[v];
}

void WordlengthOptimizer::apply(const std::vector<int>& bits) {
  PSDACC_EXPECTS(bits.size() == variables_.size());
  for (std::size_t v = 0; v < variables_.size(); ++v)
    set_bits(graph_, variables_[v], bits[v]);
}

double WordlengthOptimizer::evaluate() {
  ++evaluations_;
  return analyzer_.output_noise_power();
}

OptimizerResult WordlengthOptimizer::package(std::vector<int> bits) {
  apply(bits);
  OptimizerResult r;
  r.noise = evaluate();
  r.bits = std::move(bits);
  r.cost = 0.0;
  for (std::size_t v = 0; v < r.bits.size(); ++v)
    r.cost += weight(v) * r.bits[v];
  r.evaluations = evaluations_;
  r.feasible = r.noise <= cfg_.noise_budget;
  return r;
}

OptimizerResult WordlengthOptimizer::uniform() {
  for (int d = cfg_.min_bits; d <= cfg_.max_bits; ++d) {
    std::vector<int> bits(variables_.size(), d);
    apply(bits);
    if (evaluate() <= cfg_.noise_budget) return package(std::move(bits));
  }
  return package(std::vector<int>(variables_.size(), cfg_.max_bits));
}

OptimizerResult WordlengthOptimizer::greedy_descent() {
  std::vector<int> bits(variables_.size(), cfg_.max_bits);
  apply(bits);
  double current = evaluate();
  if (current > cfg_.noise_budget)
    return package(std::move(bits));  // infeasible even at max
  for (;;) {
    std::size_t best = variables_.size();
    double best_score = 0.0;
    double best_noise = current;
    for (std::size_t v = 0; v < variables_.size(); ++v) {
      if (bits[v] <= cfg_.min_bits) continue;
      --bits[v];
      apply(bits);
      const double noise = evaluate();
      if (noise <= cfg_.noise_budget) {
        // Prefer the cheapest noise increase per unit cost saved: score on
        // the *marginal* increase over the current noise, not the absolute
        // level — the absolute level is dominated by the shared noise floor
        // and would rank candidates purely by weight.
        const double marginal = std::max(noise - current, 0.0);
        const double score = weight(v) / std::max(marginal, 1e-300);
        if (best == variables_.size() || score > best_score) {
          best = v;
          best_score = score;
          best_noise = noise;
        }
      }
      ++bits[v];
    }
    if (best == variables_.size()) break;
    --bits[best];
    current = best_noise;
  }
  return package(std::move(bits));
}

OptimizerResult WordlengthOptimizer::min_plus_one() {
  // Per-variable lower bound: the fewest bits for variable v with all
  // others at max (the standard "minimum word-length" initialization).
  std::vector<int> bits(variables_.size(), cfg_.max_bits);
  std::vector<int> lower(variables_.size(), cfg_.min_bits);
  for (std::size_t v = 0; v < variables_.size(); ++v) {
    for (int d = cfg_.min_bits; d <= cfg_.max_bits; ++d) {
      bits[v] = d;
      apply(bits);
      if (evaluate() <= cfg_.noise_budget) {
        lower[v] = d;
        break;
      }
      lower[v] = cfg_.max_bits;
    }
    bits[v] = cfg_.max_bits;
  }
  // Start from the (usually infeasible) lower bounds and add the most
  // effective bit until feasible.
  bits = lower;
  apply(bits);
  double noise = evaluate();
  while (noise > cfg_.noise_budget) {
    std::size_t best = variables_.size();
    double best_gain = 0.0;
    for (std::size_t v = 0; v < variables_.size(); ++v) {
      if (bits[v] >= cfg_.max_bits) continue;
      ++bits[v];
      apply(bits);
      const double probe = evaluate();
      const double gain = (noise - probe) / weight(v);
      if (best == variables_.size() || gain > best_gain) {
        best = v;
        best_gain = gain;
      }
      --bits[v];
    }
    if (best == variables_.size()) break;  // everything saturated
    ++bits[best];
    apply(bits);
    noise = evaluate();
  }
  return package(std::move(bits));
}

}  // namespace psdacc::opt
