// Word-length optimization driver — the design-automation loop the paper's
// fast accuracy evaluation exists to serve.
//
// The optimizer owns a set of word-length variables (quantizer nodes and
// quantized blocks of one SFG), a hardware-cost model (weighted sum of
// fractional bits by default), and an output-noise budget. Strategies:
//
//  * uniform()        — smallest single d meeting the budget (baseline);
//  * greedy_descent() — start generous, repeatedly remove the bit with the
//    best cost/noise trade until no removal fits the budget (the classic
//    "max -1 bit" heuristic);
//  * min_plus_one()   — start from each variable's noise-constrained lower
//    bound and add bits where they help most until the budget is met.
//
// Every probe is one O(N) PSD evaluation, so thousands of candidates per
// second are feasible — the paper's scalability argument made concrete.
#pragma once

#include <cstddef>
#include <vector>

#include "core/psd_analyzer.hpp"
#include "sfg/graph.hpp"

namespace psdacc::opt {

struct OptimizerConfig {
  double noise_budget = 1e-6;  // max output noise power
  int min_bits = 2;
  int max_bits = 24;
  std::size_t n_psd = 512;
  /// Per-variable cost weight (e.g. multiplier width); empty = all 1.
  std::vector<double> cost_weights;
};

struct OptimizerResult {
  std::vector<int> bits;        // per variable, in variable order
  double cost = 0.0;            // weighted bit total
  double noise = 0.0;           // estimated output noise power
  std::size_t evaluations = 0;  // PSD evaluations spent
  bool feasible = false;        // noise <= budget
};

class WordlengthOptimizer {
 public:
  /// `variables` are node ids of QuantizerNodes or quantized BlockNodes in
  /// `g`; the optimizer mutates their fractional bit counts in place
  /// during the search and leaves the best assignment applied.
  WordlengthOptimizer(sfg::Graph& g, std::vector<sfg::NodeId> variables,
                      OptimizerConfig cfg);

  OptimizerResult uniform();
  OptimizerResult greedy_descent();
  OptimizerResult min_plus_one();

  /// Applies an assignment (one entry per variable).
  void apply(const std::vector<int>& bits);
  /// Estimated output noise for the currently applied assignment.
  double evaluate();
  std::size_t evaluations() const { return evaluations_; }

 private:
  double weight(std::size_t v) const;
  OptimizerResult package(std::vector<int> bits);

  sfg::Graph& graph_;
  std::vector<sfg::NodeId> variables_;
  OptimizerConfig cfg_;
  core::PsdAnalyzer analyzer_;
  std::size_t evaluations_ = 0;
};

}  // namespace psdacc::opt
