/// @file wordlength_optimizer.hpp
/// Word-length optimization driver — the design-automation loop the paper's
/// fast accuracy evaluation exists to serve.
///
/// Every probe is one O(N) PSD evaluation, so thousands of candidates per
/// second are feasible — the paper's scalability argument made concrete.
#pragma once

#include <cstddef>
#include <vector>

#include "core/psd_analyzer.hpp"
#include "sfg/graph.hpp"

namespace psdacc::opt {

/// Search constraints and cost model for WordlengthOptimizer.
struct OptimizerConfig {
  double noise_budget = 1e-6;  ///< Max output noise power.
  int min_bits = 2;            ///< Lower bound per variable.
  int max_bits = 24;           ///< Upper bound per variable.
  std::size_t n_psd = 512;     ///< PSD bins used by the probe analyzer.
  /// Per-variable cost weight (e.g. multiplier width); empty = all 1.
  std::vector<double> cost_weights;
};

/// Outcome of one optimization strategy.
struct OptimizerResult {
  std::vector<int> bits;        ///< Per variable, in variable order.
  double cost = 0.0;            ///< Weighted bit total.
  double noise = 0.0;           ///< Estimated output noise power.
  std::size_t evaluations = 0;  ///< PSD evaluations spent.
  bool feasible = false;        ///< noise <= budget.
};

/// Minimizes hardware cost (weighted fractional bits) subject to an
/// output-noise budget, probing candidates with the PSD engine.
class WordlengthOptimizer {
 public:
  /// @param g         the system; mutated in place during the search, with
  ///                  the best found assignment left applied
  /// @param variables node ids of QuantizerNodes or quantized BlockNodes
  ///                  in @p g whose fractional bits are free
  /// @param cfg       budget, bit bounds, and cost weights
  WordlengthOptimizer(sfg::Graph& g, std::vector<sfg::NodeId> variables,
                      OptimizerConfig cfg);

  /// Smallest single uniform d meeting the budget (baseline).
  OptimizerResult uniform();
  /// Start generous, repeatedly remove the bit with the best cost/noise
  /// trade until no removal fits the budget ("max -1 bit" heuristic).
  OptimizerResult greedy_descent();
  /// Start from each variable's noise-constrained lower bound and add bits
  /// where they help most until the budget is met.
  OptimizerResult min_plus_one();

  /// Applies an assignment (one entry per variable).
  void apply(const std::vector<int>& bits);
  /// Estimated output noise for the currently applied assignment.
  double evaluate();
  std::size_t evaluations() const { return evaluations_; }

 private:
  double weight(std::size_t v) const;
  OptimizerResult package(std::vector<int> bits);

  sfg::Graph& graph_;
  std::vector<sfg::NodeId> variables_;
  OptimizerConfig cfg_;
  core::PsdAnalyzer analyzer_;
  std::size_t evaluations_ = 0;
};

}  // namespace psdacc::opt
