/// @file wordlength_optimizer.hpp
/// Word-length optimization driver — the design-automation loop the paper's
/// fast accuracy evaluation exists to serve.
///
/// The optimizer is engine-agnostic: every probe is one
/// core::AccuracyEngine evaluation, so the same search runs under the
/// proposed PSD method (the default), the flat or moment baselines — the
/// paper's Table-II comparison extended to a *search-quality* axis — or
/// even bit-true simulation. With the default PSD engine a probe is one
/// O(N) sweep — and with incremental probing (the default where the
/// engine's capabilities().delta holds) a probe shrinks further to
/// O(sources): only the changed variable's noise contribution is
/// re-derived, the rest combines from the probe context's cache. With
/// `OptimizerConfig::workers > 1` the candidate probes of one search
/// iteration are scored concurrently on a runtime::ThreadPool (each worker
/// probing its own graph clone + engine via clone_for_worker), multiplying
/// that throughput by core count while keeping results bit-identical to
/// the serial search.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "core/accuracy_engine.hpp"
#include "core/range_analysis.hpp"
#include "runtime/thread_pool.hpp"
#include "sfg/graph.hpp"

namespace psdacc::opt {

/// Search constraints and cost model for WordlengthOptimizer.
struct OptimizerConfig {
  double noise_budget = 1e-6;  ///< Max output noise power.
  int min_bits = 2;            ///< Lower bound per variable.
  int max_bits = 24;           ///< Upper bound per variable.
  std::size_t n_psd = 512;     ///< Spectral bins for flat/psd probes.
  /// Per-variable cost weight (e.g. multiplier width); empty = all 1.
  std::vector<double> cost_weights;
  /// Concurrency for candidate probing (1 = serial). Any value produces
  /// bit-identical results; the candidate scores are computed on isolated
  /// graph clones and the selection scan always runs in variable order.
  std::size_t workers = 1;
  /// Optional externally owned pool (overrides `workers`). Sharing one
  /// pool across optimizers / a BatchRunner avoids per-optimizer thread
  /// spawns and keeps the workers' thread-local FFT plan caches warm.
  runtime::ThreadPool* pool = nullptr;
  /// Accuracy backend scoring the probes. Any kind works; psd is the
  /// paper's proposal, moment/flat turn the search into the baselines'
  /// version of it, simulation gives a (slow) Monte-Carlo-guided search.
  core::EngineKind engine = core::EngineKind::kPsd;
  /// Remaining backend knobs (moment truncation, interpolation, simulation
  /// plan...). `n_psd` above overrides `engine_opts.n_psd` so existing
  /// drivers keep one resolution knob.
  core::EngineOptions engine_opts;
  /// Probe candidates through AccuracyEngine::evaluate_delta when the
  /// engine supports it (capabilities().delta): a probe then re-derives
  /// only the noise contribution of the changed variable and combines the
  /// rest from the per-worker probe context's cache — O(sources) instead
  /// of O(graph). Engines without the capability (simulation always, psd
  /// with upsamplers, moment under corrected multirate rules) fall back
  /// to full evaluation automatically. Off = always full probes (the
  /// pre-incremental behavior, kept for A/B timing); both settings find
  /// identical word-lengths.
  bool incremental = true;
  /// Cooperative cancellation hook, polled between probe rounds (never
  /// inside one, so a poll always sees a consistent search state): before
  /// each uniform step, each greedy removal round, and each min_plus_one
  /// scan/add round. Return true to stop: the strategy abandons further
  /// probing and returns its current working assignment applied and
  /// re-evaluated, with OptimizerResult::cancelled set. This is the hook
  /// server-side job timeouts ride on (`[deadline] { return now() >=
  /// deadline; }`); unset means never cancelled.
  std::function<bool()> cancel_check;
  /// When set, integer bits of every variable are sized from dynamic-range
  /// analysis (core::analyze_ranges with this input range +
  /// core::required_integer_bits) instead of left at their construction
  /// values. The analysis depends only on topology and coefficients, so it
  /// is hoisted behind the graph's topology revision: computed once and
  /// reused across every apply()/evaluate()/probe of the search
  /// (regression-tested via core::analyze_ranges_calls()).
  std::optional<core::Range> input_range;
};

/// Outcome of one optimization strategy.
struct OptimizerResult {
  std::vector<int> bits;        ///< Per variable, in variable order.
  double cost = 0.0;            ///< Weighted bit total.
  double noise = 0.0;           ///< Estimated output noise power.
  std::size_t evaluations = 0;  ///< PSD evaluations spent.
  bool feasible = false;        ///< noise <= budget.
  /// True when OptimizerConfig::cancel_check stopped the search early. The
  /// other fields then describe the partial state: the assignment the
  /// search held when it was cancelled (applied to the graph, noise
  /// re-evaluated), not a converged optimum.
  bool cancelled = false;
};

/// Minimizes hardware cost (weighted fractional bits) subject to an
/// output-noise budget, probing candidates with any AccuracyEngine.
class WordlengthOptimizer {
 public:
  /// @param g         the system; mutated in place during the search, with
  ///                  the best found assignment left applied
  /// @param variables node ids of QuantizerNodes or quantized BlockNodes
  ///                  in @p g whose fractional bits are free
  /// @param cfg       budget, bit bounds, cost weights, worker count, and
  ///                  the accuracy engine scoring the probes
  /// @throws std::invalid_argument when the configured engine cannot
  ///         evaluate @p g (core::engine_supports), e.g. flat + multirate
  WordlengthOptimizer(sfg::Graph& g, std::vector<sfg::NodeId> variables,
                      OptimizerConfig cfg);
  ~WordlengthOptimizer();

  /// Smallest single uniform d meeting the budget (baseline).
  OptimizerResult uniform();
  /// Start generous, repeatedly remove the bit with the best cost/noise
  /// trade until no removal fits the budget ("max -1 bit" heuristic).
  /// Candidate probes of each iteration are scored concurrently.
  OptimizerResult greedy_descent();
  /// Start from each variable's noise-constrained lower bound and add bits
  /// where they help most until the budget is met. The per-variable bound
  /// scans and the per-iteration probes run concurrently.
  OptimizerResult min_plus_one();

  /// Applies an assignment (one entry per variable).
  void apply(const std::vector<int>& bits);
  /// Estimated output noise for the currently applied assignment.
  double evaluate();
  std::size_t evaluations() const { return evaluations_; }
  /// The accuracy backend scoring this search's probes.
  const core::AccuracyEngine& engine() const { return *engine_; }
  /// The system under optimization (the graph the constructor bound).
  const sfg::Graph& graph() const { return graph_; }
  const std::vector<sfg::NodeId>& variables() const { return variables_; }
  std::size_t variable_count() const { return variables_.size(); }
  const OptimizerConfig& config() const { return cfg_; }
  /// Per-variable cost weight (1.0 when cost_weights is empty).
  double cost_weight(std::size_t v) const { return weight(v); }
  /// Weighted cost of an assignment, without touching the graph.
  double cost_of(const std::vector<int>& bits) const;

  /// --- Search-strategy support (src/opt/search) ----------------------
  /// The strategies in opt::search (annealing, tabu, branch-and-bound,
  /// Pareto sweeps) drive the optimizer through this batch-probe surface
  /// instead of the built-in heuristics, inheriting the same probe
  /// contexts, delta path, counters and determinism contract.

  /// One hypothetical single-variable change scored against a baseline.
  struct Candidate {
    std::size_t v = 0;  ///< Variable index (into variables()).
    int bits = 0;       ///< Proposed fractional bits for that variable.
  };
  /// Noise of `baseline` with each candidate applied alone — one probe per
  /// candidate, scored concurrently on the pool, results returned in
  /// candidate order. Bit-identical for any worker count (each probe runs
  /// on an isolated context; see probe()). evaluations() advances by
  /// candidates.size() on the driving thread after the round.
  std::vector<double> probe_candidates(
      const std::vector<int>& baseline,
      const std::vector<Candidate>& candidates);
  /// Noise of a complete assignment, probed on a leased context — the
  /// driving graph is untouched. Always a full (non-delta) evaluation;
  /// what tree searches use to bound and score subproblems. Call from the
  /// driving thread only (bumps evaluations()).
  double probe_assignment(const std::vector<int>& bits);
  /// apply() + evaluate() + weighted cost, packaged with the same
  /// invariants as the built-in strategies' returns — external strategies
  /// finish through this so their results are indistinguishable.
  OptimizerResult package_result(std::vector<int> bits) {
    return package(std::move(bits));
  }
  /// package_result() with OptimizerResult::cancelled set — the
  /// early-return path when cancel_requested() fires mid-search.
  OptimizerResult cancelled_result(std::vector<int> bits) {
    return cancelled_package(std::move(bits));
  }
  /// True when the config's cancel_check exists and fires. Poll between
  /// probe rounds only, from the driving thread.
  bool cancel_requested() const;
  /// Evaluation accounting aggregated over the prototype engine and every
  /// probe context's engine — the probe-counter hook tests use to assert
  /// probes really took the delta path (or the cache-warm full path). Call
  /// between searches, when no probe is in flight.
  core::AccuracyEngine::EvalCounters probe_counters() const;

 private:
  // One worker's isolated probe state: a private clone of the system plus
  // an engine bound to it (clone_for_worker). NodeIds are indices, so the
  // optimizer's variable ids are valid in the clone.
  struct ProbeContext {
    sfg::Graph graph;
    std::unique_ptr<core::AccuracyEngine> engine;
    ProbeContext(const sfg::Graph& src,
                 const core::AccuracyEngine& prototype)
        : graph(src), engine(prototype.clone_for_worker(graph)) {}
  };
  // RAII checkout of a ProbeContext from the shared free list.
  class ContextLease;

  double weight(std::size_t v) const;
  OptimizerResult package(std::vector<int> bits);
  /// package() with the cancelled flag set — the early-return path.
  OptimizerResult cancelled_package(std::vector<int> bits);
  /// Noise of `bits` with bits[v] replaced by `candidate_bits`, evaluated
  /// on a checked-out probe context (safe to call concurrently). Takes the
  /// engine's delta path when enabled (see OptimizerConfig::incremental):
  /// the context graph is stamped to the `bits` baseline and the candidate
  /// is evaluated hypothetically, so the context's per-source caches stay
  /// warm across the whole iteration.
  double probe(const std::vector<int>& bits, std::size_t v,
               int candidate_bits);
  /// Range-analysis hoist: sizes variable integer bits from
  /// cfg_.input_range once per topology revision (no-op when unset or
  /// already current).
  void ensure_integer_bits();

  sfg::Graph& graph_;
  std::vector<sfg::NodeId> variables_;
  OptimizerConfig cfg_;
  std::unique_ptr<core::AccuracyEngine> engine_;
  bool delta_probes_ = false;
  std::uint64_t ranges_topology_ = ~std::uint64_t{0};
  std::size_t evaluations_ = 0;
  std::unique_ptr<runtime::ThreadPool> owned_pool_;
  runtime::ThreadPool* pool_;
  mutable std::mutex contexts_mutex_;
  std::vector<std::unique_ptr<ProbeContext>> free_contexts_;
};

}  // namespace psdacc::opt
