#include "imaging/textures.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "dsp/fft.hpp"
#include "support/assert.hpp"
#include "support/random.hpp"

namespace psdacc::img {
namespace {

// Rescales pixels to [margin, 1 - margin].
void normalize_range(Image& im, double margin = 0.02) {
  const auto [lo_it, hi_it] =
      std::minmax_element(im.data().begin(), im.data().end());
  const double lo = *lo_it;
  const double hi = *hi_it;
  const double span = hi - lo;
  if (span <= 0.0) return;
  for (double& v : im.data())
    v = margin + (1.0 - 2.0 * margin) * (v - lo) / span;
}

Image power_law_field(std::size_t rows, std::size_t cols, double alpha,
                      Xoshiro256& rng) {
  // Shape white Gaussian noise in the 2-D Fourier domain by 1/f^(alpha/2)
  // (amplitude), then invert. Uses row-column 1-D FFTs.
  std::vector<std::vector<dsp::cplx>> field(
      rows, std::vector<dsp::cplx>(cols));
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c)
      field[r][c] = dsp::cplx(rng.gaussian(), rng.gaussian());
  auto freq_of = [](std::size_t k, std::size_t n) {
    const double f = static_cast<double>(k) / static_cast<double>(n);
    return f <= 0.5 ? f : 1.0 - f;
  };
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c) {
      const double fr = freq_of(r, rows);
      const double fc = freq_of(c, cols);
      const double f = std::hypot(fr, fc);
      const double amp = 1.0 / std::pow(std::max(f, 1.0 / 256.0), alpha);
      field[r][c] *= amp;
    }
  // Inverse 2-D FFT by rows then columns.
  for (std::size_t r = 0; r < rows; ++r) dsp::ifft(field[r]);
  std::vector<dsp::cplx> column(rows);
  for (std::size_t c = 0; c < cols; ++c) {
    for (std::size_t r = 0; r < rows; ++r) column[r] = field[r][c];
    dsp::ifft(column);
    for (std::size_t r = 0; r < rows; ++r) field[r][c] = column[r];
  }
  Image im(rows, cols);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c) im.at(r, c) = field[r][c].real();
  normalize_range(im);
  return im;
}

Image grating(std::size_t rows, std::size_t cols, Xoshiro256& rng) {
  const double freq = rng.uniform(0.02, 0.35);
  const double theta = rng.uniform(0.0, std::numbers::pi);
  const double phase = rng.uniform(0.0, 2.0 * std::numbers::pi);
  const double harmonic = rng.uniform(0.0, 0.5);
  Image im(rows, cols);
  const double kx = 2.0 * std::numbers::pi * freq * std::cos(theta);
  const double ky = 2.0 * std::numbers::pi * freq * std::sin(theta);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c) {
      const double arg = kx * static_cast<double>(c) +
                         ky * static_cast<double>(r) + phase;
      im.at(r, c) = std::sin(arg) + harmonic * std::sin(3.0 * arg);
    }
  normalize_range(im);
  return im;
}

Image checkerboard(std::size_t rows, std::size_t cols, Xoshiro256& rng) {
  const auto cell = static_cast<std::size_t>(rng.uniform(2.0, 17.0));
  const double contrast = rng.uniform(0.5, 1.0);
  Image im(rows, cols);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c) {
      const bool on = ((r / cell) + (c / cell)) % 2 == 0;
      im.at(r, c) = 0.5 + (on ? 0.5 : -0.5) * contrast;
    }
  // Light noise so the image is not exactly representable at coarse d.
  for (double& v : im.data()) v += 0.01 * rng.gaussian();
  normalize_range(im);
  return im;
}

Image blobs(std::size_t rows, std::size_t cols, Xoshiro256& rng) {
  Image im(rows, cols, 0.0);
  const int count = 3 + static_cast<int>(rng.below(8));
  for (int b = 0; b < count; ++b) {
    const double cy = rng.uniform(0.0, static_cast<double>(rows));
    const double cx = rng.uniform(0.0, static_cast<double>(cols));
    const double sigma =
        rng.uniform(0.05, 0.25) * static_cast<double>(std::min(rows, cols));
    const double amp = rng.uniform(-1.0, 1.0);
    for (std::size_t r = 0; r < rows; ++r)
      for (std::size_t c = 0; c < cols; ++c) {
        const double dr = static_cast<double>(r) - cy;
        const double dc = static_cast<double>(c) - cx;
        im.at(r, c) +=
            amp * std::exp(-(dr * dr + dc * dc) / (2.0 * sigma * sigma));
      }
  }
  normalize_range(im);
  return im;
}

}  // namespace

Image make_texture(TextureKind kind, std::size_t rows, std::size_t cols,
                   std::uint64_t seed) {
  PSDACC_EXPECTS(rows >= 8 && cols >= 8);
  Xoshiro256 rng(seed);
  switch (kind) {
    case TextureKind::kPowerLaw:
      return power_law_field(rows, cols, rng.uniform(0.5, 2.5), rng);
    case TextureKind::kGrating:
      return grating(rows, cols, rng);
    case TextureKind::kCheckerboard:
      return checkerboard(rows, cols, rng);
    case TextureKind::kBlobs:
      return blobs(rows, cols, rng);
  }
  PSDACC_EXPECTS(false);
  return Image(rows, cols);
}

std::vector<Image> texture_bank(std::size_t count, std::size_t rows,
                                std::size_t cols, std::uint64_t seed) {
  std::vector<Image> bank;
  bank.reserve(count);
  constexpr TextureKind kinds[] = {TextureKind::kPowerLaw,
                                   TextureKind::kGrating,
                                   TextureKind::kCheckerboard,
                                   TextureKind::kBlobs};
  for (std::size_t i = 0; i < count; ++i)
    bank.push_back(
        make_texture(kinds[i % 4], rows, cols, seed + 1000 * i + i));
  return bank;
}

}  // namespace psdacc::img
