#include "imaging/image.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "support/assert.hpp"

namespace psdacc::img {

Image::Image(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {
  PSDACC_EXPECTS(rows >= 1 && cols >= 1);
}

double& Image::at(std::size_t r, std::size_t c) {
  PSDACC_EXPECTS(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

double Image::at(std::size_t r, std::size_t c) const {
  PSDACC_EXPECTS(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

std::vector<double> Image::row(std::size_t r) const {
  PSDACC_EXPECTS(r < rows_);
  return std::vector<double>(data_.begin() + static_cast<std::ptrdiff_t>(
                                                 r * cols_),
                             data_.begin() + static_cast<std::ptrdiff_t>(
                                                 (r + 1) * cols_));
}

std::vector<double> Image::col(std::size_t c) const {
  PSDACC_EXPECTS(c < cols_);
  std::vector<double> out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = data_[r * cols_ + c];
  return out;
}

void Image::set_row(std::size_t r, const std::vector<double>& values) {
  PSDACC_EXPECTS(r < rows_ && values.size() == cols_);
  std::copy(values.begin(), values.end(),
            data_.begin() + static_cast<std::ptrdiff_t>(r * cols_));
}

void Image::set_col(std::size_t c, const std::vector<double>& values) {
  PSDACC_EXPECTS(c < cols_ && values.size() == rows_);
  for (std::size_t r = 0; r < rows_; ++r) data_[r * cols_ + c] = values[r];
}

double mse(const Image& a, const Image& b) {
  PSDACC_EXPECTS(a.rows() == b.rows() && a.cols() == b.cols());
  PSDACC_EXPECTS(a.size() > 0);
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a.data()[i] - b.data()[i];
    acc += d * d;
  }
  return acc / static_cast<double>(a.size());
}

double psnr(const Image& a, const Image& b) {
  const double m = mse(a, b);
  PSDACC_EXPECTS(m > 0.0);
  return 10.0 * std::log10(1.0 / m);
}

void write_pgm(const Image& image, const std::string& path, double lo,
               double hi) {
  PSDACC_EXPECTS(hi > lo);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  PSDACC_EXPECTS(f != nullptr);
  std::fprintf(f, "P5\n%zu %zu\n255\n", image.cols(), image.rows());
  for (double v : image.data()) {
    const double t = std::clamp((v - lo) / (hi - lo), 0.0, 1.0);
    const auto byte = static_cast<unsigned char>(std::lround(t * 255.0));
    std::fputc(byte, f);
  }
  std::fclose(f);
}

}  // namespace psdacc::img
