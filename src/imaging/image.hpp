// Minimal grayscale image container used by the DWT experiments.
// Pixel values are doubles, nominally in [0, 1).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace psdacc::img {

class Image {
 public:
  Image() = default;
  Image(std::size_t rows, std::size_t cols, double fill = 0.0);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }

  double& at(std::size_t r, std::size_t c);
  double at(std::size_t r, std::size_t c) const;

  std::vector<double>& data() { return data_; }
  const std::vector<double>& data() const { return data_; }

  /// Extracts row r / column c as a vector.
  std::vector<double> row(std::size_t r) const;
  std::vector<double> col(std::size_t c) const;
  void set_row(std::size_t r, const std::vector<double>& values);
  void set_col(std::size_t c, const std::vector<double>& values);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Mean squared difference between two same-size images.
double mse(const Image& a, const Image& b);
/// Peak signal-to-noise ratio in dB for unit-range images.
double psnr(const Image& a, const Image& b);

/// Writes an 8-bit binary PGM, mapping [lo, hi] to [0, 255] (clamping).
void write_pgm(const Image& image, const std::string& path, double lo = 0.0,
               double hi = 1.0);

}  // namespace psdacc::img
