// Procedural texture generator — the substitution for the USC-SIPI /
// RPI-CIPR / Brodatz image databases the paper uses (196 grayscale images).
//
// The DWT accuracy experiments only need the images to (a) exercise all
// sub-bands and (b) span the spectral envelope family of natural images.
// Four deterministic families cover that:
//   * power-law Gaussian random fields (1/f^alpha spectra, the classic
//     natural-image statistic) with alpha in [0.5, 2.5];
//   * oriented sinusoidal gratings (narrow-band energy, Brodatz-like);
//   * checkerboards / block patterns (strong high-frequency content);
//   * smooth Gaussian blob scenes (low-frequency dominated).
#pragma once

#include <cstdint>
#include <vector>

#include "imaging/image.hpp"

namespace psdacc::img {

enum class TextureKind { kPowerLaw, kGrating, kCheckerboard, kBlobs };

/// One texture of the given family; `seed` controls all random parameters.
Image make_texture(TextureKind kind, std::size_t rows, std::size_t cols,
                   std::uint64_t seed);

/// Deterministic bank of `count` images cycling through the families with
/// varying parameters — the stand-in for the paper's 196-image corpus.
std::vector<Image> texture_bank(std::size_t count, std::size_t rows,
                                std::size_t cols, std::uint64_t seed = 7);

}  // namespace psdacc::img
